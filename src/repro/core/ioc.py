"""The platform's IoC lineage: cIoC -> eIoC -> rIoC (§III).

- **cIoC** (composed): aggregation + normalization of OSINT data from
  several feeds, stored as a MISP event;
- **eIoC** (enriched): the cIoC after heuristic analysis, carrying the
  threat score (and its per-criterion breakdown) as new attributes;
- **rIoC** (reduced): the infrastructure-relevant slice of an eIoC — "just
  the most relevant information from the monitored infrastructure point of
  view" — the only thing the dashboard receives.
"""

from __future__ import annotations

import datetime as _dt
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError
from ..misp import MispAttribute, MispEvent

#: MISP tags the platform stamps on events at each lifecycle stage.
TAG_CIOC = "caop:ioc=\"composed\""
TAG_EIOC = "caop:ioc=\"enriched\""
#: The custom attribute type/comment carrying the threat score on an eIoC.
THREAT_SCORE_COMMENT = "caop threat score"


@dataclass(frozen=True)
class FeatureScore:
    """One scored feature: its value Xi, weight Pi and criteria points."""

    feature: str
    value: Optional[int]          # None -> feature empty (no info)
    attribute_label: str          # which score-table row fired, e.g. "last_year"
    relevance: int
    accuracy: int
    timeliness: int
    variety: int
    weight: float = 0.0           # Pi, filled in by the engine

    @property
    def empty(self) -> bool:
        """Whether this feature carried no information."""
        return self.value is None

    @property
    def criteria_points(self) -> int:
        """Total R/A/T/V expert points of this feature."""
        return self.relevance + self.accuracy + self.timeliness + self.variety

    @property
    def contribution(self) -> float:
        """Xi * Pi (zero for empty features)."""
        if self.value is None:
            return 0.0
        return self.value * self.weight


@dataclass(frozen=True)
class ThreatScoreResult:
    """The full outcome of one heuristic analysis (Eq. 1)."""

    heuristic: str
    score: float
    completeness: float
    weighted_sum: float
    features: Tuple[FeatureScore, ...]

    def __post_init__(self) -> None:
        # Weighted sums can land a few ulps outside [0, 5]; snap those back
        # rather than failing on float rounding.
        if -1e-9 <= self.score < 0.0 or 5.0 < self.score <= 5.0 + 1e-9:
            object.__setattr__(self, "score", min(5.0, max(0.0, self.score)))
        if not 0.0 <= self.score <= 5.0:
            raise ValidationError(f"threat score out of range: {self.score}")

    @property
    def non_empty_features(self) -> Tuple[FeatureScore, ...]:
        """The features that carried information."""
        return tuple(f for f in self.features if not f.empty)

    def feature(self, name: str) -> FeatureScore:
        """Look up one feature score by name."""
        for feature in self.features:
            if feature.feature == name:
                return feature
        raise KeyError(name)

    def breakdown(self) -> Dict[str, Any]:
        """Per-criterion detail (future-work §VI: expose each criterion)."""
        return {
            "heuristic": self.heuristic,
            "score": round(self.score, 4),
            "completeness": round(self.completeness, 4),
            "weighted_sum": round(self.weighted_sum, 4),
            "features": [
                {
                    "feature": f.feature,
                    "value": f.value,
                    "attribute": f.attribute_label,
                    "weight": round(f.weight, 4),
                    "criteria": {
                        "relevance": f.relevance,
                        "accuracy": f.accuracy,
                        "timeliness": f.timeliness,
                        "variety": f.variety,
                    },
                }
                for f in self.features
            ],
        }

    def priority(self) -> str:
        """Coarse analyst-facing priority band derived from the score."""
        if self.score >= 4.0:
            return "critical"
        if self.score >= 3.0:
            return "high"
        if self.score >= 2.0:
            return "medium"
        if self.score >= 1.0:
            return "low"
        return "very-low"


@dataclass
class ReducedIoc:
    """The rIoC sent to the dashboard (§III-C1, Fig. 4).

    Carries "the number of detected vulnerabilities, the CVE, the associated
    threat score, a brief description of the vulnerability and the affected
    application", plus the nodes it maps onto and a link back to the stored
    eIoC.
    """

    eioc_uuid: str
    threat_score: float
    nodes: Tuple[str, ...]
    cve: Optional[str] = None
    description: str = ""
    affected_application: str = ""
    matched_term: str = ""
    via_common_keyword: bool = False
    vulnerability_count: int = 1
    created_at: Optional[_dt.datetime] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValidationError("an rIoC must map onto at least one node")
        if not 0.0 <= self.threat_score <= 5.0:
            raise ValidationError(f"threat score out of range: {self.threat_score}")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-ready dict."""
        return {
            "eioc_uuid": self.eioc_uuid,
            "threat_score": round(self.threat_score, 4),
            "nodes": list(self.nodes),
            "cve": self.cve,
            "description": self.description,
            "affected_application": self.affected_application,
            "matched_term": self.matched_term,
            "via_common_keyword": self.via_common_keyword,
            "vulnerability_count": self.vulnerability_count,
            "created_at": self.created_at.isoformat() if self.created_at else None,
        }

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReducedIoc":
        """Revive an instance from its dict form."""
        created = data.get("created_at")
        return cls(
            eioc_uuid=data["eioc_uuid"],
            threat_score=float(data["threat_score"]),
            nodes=tuple(data["nodes"]),
            cve=data.get("cve"),
            description=data.get("description", ""),
            affected_application=data.get("affected_application", ""),
            matched_term=data.get("matched_term", ""),
            via_common_keyword=bool(data.get("via_common_keyword", False)),
            vulnerability_count=int(data.get("vulnerability_count", 1)),
            created_at=_dt.datetime.fromisoformat(created) if created else None,
        )


def is_cioc(event: MispEvent) -> bool:
    """Whether the event is tagged as a composed IoC."""
    return event.has_tag(TAG_CIOC)


def is_eioc(event: MispEvent) -> bool:
    """Whether the event is tagged as an enriched IoC."""
    return event.has_tag(TAG_EIOC)


def threat_score_of(event: MispEvent) -> Optional[float]:
    """Read the threat score attribute off an eIoC, if present."""
    for attribute in event.all_attributes():
        if attribute.type == "float" and attribute.comment == THREAT_SCORE_COMMENT:
            try:
                return float(attribute.value)
            except ValueError:
                return None
    return None
