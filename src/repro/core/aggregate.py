"""Aggregation by threat category (§III-A1).

"Afterwards, the component aggregates the security events by threat
category, resulting in sets of events regarding a same category."
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List

from .normalize import NormalizedEvent


class Aggregator:
    """Groups normalized events into per-category sets (insertion ordered)."""

    def aggregate(self, events: Iterable[NormalizedEvent]
                  ) -> "OrderedDict[str, List[NormalizedEvent]]":
        """Group events by threat category (insertion-ordered)."""
        groups: "OrderedDict[str, List[NormalizedEvent]]" = OrderedDict()
        for event in events:
            groups.setdefault(event.category, []).append(event)
        return groups

    def category_counts(self, events: Iterable[NormalizedEvent]) -> Dict[str, int]:
        """Per-category event counts for a batch."""
        return {category: len(batch)
                for category, batch in self.aggregate(events).items()}
