"""Rate-limited decay compaction: the one legitimate full pass.

The decaying-IoC model (PAPERS.md) needs a periodic re-score of *every*
stored indicator — scores drift with nothing but time passing, so no change
feed can carry that information.  Historically the platform paid that full
pass every cycle; this module makes it an explicit, budgeted stage:

- it runs only when **due** — every ``every_cycles`` platform cycles AND at
  least ``min_interval_seconds`` apart on the platform clock (virtual time
  under :class:`~repro.clock.SimulatedClock`);
- each run is the same full sweep + expired purge the always-full-pass
  baseline performed, so the store converges to byte-identical state — the
  purges just land on compaction cadence instead of every cycle;
- its cost is metered (``caop_compaction_*`` counters + a duration
  histogram) so the full-pass budget shows up in dashboards instead of
  hiding inside cycle time.

Purged events land in the audit log as ``deleted`` rows, so downstream
rollups hear about them through the ordinary change feed — the platform
orders its ``compact`` stage before its ``rollup`` stage for exactly that
reason.
"""

from __future__ import annotations

import datetime as _dt
import time
from dataclasses import dataclass
from typing import Optional

from ..clock import Clock, SimulatedClock
from ..misp import MispStore
from ..obs import MetricsRegistry, NULL_REGISTRY
from .decay import ScoreDecayEngine

#: Compaction full-pass duration buckets (seconds).
COMPACTION_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction opportunity did (or why it did nothing)."""

    ran: bool
    cycle: int
    #: Stored events walked by the sweep (0 when skipped).
    scanned: int = 0
    #: Scored events still live after re-scoring.
    live: int = 0
    #: Scored events found past their lifetime.
    expired: int = 0
    #: Expired events actually deleted (0 when purging is disabled).
    purged: int = 0
    #: Wall-clock seconds the full pass took (0.0 when skipped).
    duration: float = 0.0


class CompactionStage:
    """Runs the decay full pass on a cycle/interval budget."""

    def __init__(self, store: MispStore,
                 decay: Optional[ScoreDecayEngine] = None,
                 clock: Optional[Clock] = None,
                 every_cycles: int = 25,
                 min_interval_seconds: float = 0.0,
                 purge: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.store = store
        self._clock = clock or SimulatedClock()
        self.decay = decay or ScoreDecayEngine(clock=self._clock)
        #: Run every N cycles (cycle numbers divisible by N); <= 0 disables.
        self.every_cycles = every_cycles
        #: Minimum platform-clock seconds between runs (0 = cycles only).
        self.min_interval_seconds = min_interval_seconds
        self.purge = purge
        self._last_run_at: Optional[_dt.datetime] = None
        metrics = metrics or NULL_REGISTRY
        self._m_runs = metrics.counter(
            "caop_compaction_runs_total",
            "Decay compaction full passes executed")
        self._m_skipped = metrics.counter(
            "caop_compaction_skipped_total",
            "Compaction opportunities skipped, labelled by reason")
        self._m_scanned = metrics.counter(
            "caop_compaction_events_scanned_total",
            "Events re-scored by compaction full passes")
        self._m_purged = metrics.counter(
            "caop_compaction_purged_total",
            "Expired events deleted by compaction")
        self._m_seconds = metrics.histogram(
            "caop_compaction_seconds",
            "Wall-clock duration of one compaction full pass",
            buckets=COMPACTION_SECONDS_BUCKETS)

    @property
    def last_run_at(self) -> Optional[_dt.datetime]:
        """Platform-clock instant of the last full pass (None if never)."""
        return self._last_run_at

    def due(self, cycle: int) -> bool:
        """Whether the budget allows a full pass at this cycle."""
        if self.every_cycles <= 0:
            return False
        if cycle % self.every_cycles != 0:
            return False
        if self.min_interval_seconds > 0 and self._last_run_at is not None:
            elapsed = (self._clock.now()
                       - self._last_run_at).total_seconds()
            if elapsed < self.min_interval_seconds:
                return False
        return True

    def maybe_run(self, cycle: int) -> CompactionReport:
        """Run the full pass if due; otherwise record the skip."""
        if not self.due(cycle):
            reason = "cadence" if (
                self.every_cycles <= 0
                or cycle % self.every_cycles != 0) else "interval"
            self._m_skipped.inc(reason=reason)
            return CompactionReport(ran=False, cycle=cycle)
        return self.run(cycle)

    def run(self, cycle: int = 0) -> CompactionReport:
        """The unconditional full pass: re-score everything, purge expired."""
        started = time.perf_counter()
        scanned = self.store.event_count()
        live, expired = self.decay.sweep(self.store)
        purged = 0
        if self.purge:
            for event_uuid in expired:
                if self.store.delete_event(event_uuid):
                    purged += 1
        duration = time.perf_counter() - started
        self._last_run_at = self._clock.now()
        self._m_runs.inc()
        self._m_scanned.inc(scanned)
        if purged:
            self._m_purged.inc(purged)
        self._m_seconds.observe(duration)
        return CompactionReport(
            ran=True, cycle=cycle, scanned=scanned, live=len(live),
            expired=len(expired), purged=purged, duration=duration)
