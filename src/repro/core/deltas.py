"""Change-feed consumption: persisted cursors and materialized rollups.

PR 5 proved the delta pattern for sharing (per-entity audit-seq watermark +
digest ledger → steady-state sync shares nothing).  This module generalizes
that idiom so *any* derived structure — dashboard views, geo aggregation,
intel-report summaries — can consume the store's change feed instead of
re-scanning stored state every cycle:

- :class:`DeltaCursor` — a named position into the audit-seq change feed,
  optionally persisted in the store's ``rollup_state`` table (deliberately
  separate from ``sync_state`` so federation fingerprints, which fold sync
  watermarks, never see local view-maintenance progress).
- :func:`collapse_changes` — fold raw feed rows into one action per event
  (the last one wins), split into upserts and deletes.
- :class:`StoreRollup` — base class for incrementally-maintained
  materialized views: ``refresh()`` reads the feed once, batch-loads only
  the changed events, and hands them to the subclass's ``apply_delta``.
- :class:`RollupGroup` — several rollups over one store sharing a single
  feed read and a single event fetch per cycle when their cursors align
  (the common case after the first cycle).

Cost model (docs/PERFORMANCE.md): a quiet cycle is one ``changes_since``
query returning nothing — no event payload is fetched or deserialized and
no rollup write happens.  Rollup state is persisted only at explicit
``save()`` checkpoints, not per refresh, so hot cycles never pay the
serialization either.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..misp.model import MispEvent
from ..misp.store import MispStore, StoreChange


@dataclass
class DeltaBatch:
    """One feed read collapsed to net effects, in deterministic order.

    ``upserts`` and ``deleted`` each hold event uuids ordered by
    ``(last_change_seq, uuid)`` — the same total order
    ``events_changed_since`` uses — and are disjoint: an event created and
    deleted inside the window appears only in ``deleted``.
    """

    last_seq: int = 0
    upserts: List[str] = field(default_factory=list)
    deleted: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.upserts or self.deleted)


def collapse_changes(changes: Sequence[StoreChange]) -> DeltaBatch:
    """Fold raw change-feed rows into net per-event effects.

    Multiple audit rows for one event collapse to its last action in the
    window; ``deleted`` wins over any earlier write, a re-create after a
    delete wins back.
    """
    last: Dict[str, Tuple[int, str]] = {}
    top = 0
    for change in changes:
        top = max(top, change.seq)
        last[change.event_uuid] = (change.seq, change.action)
    ordered = sorted(last.items(), key=lambda kv: (kv[1][0], kv[0]))
    batch = DeltaBatch(last_seq=top)
    for uuid, (_seq, action) in ordered:
        (batch.deleted if action == "deleted" else batch.upserts).append(uuid)
    return batch


def load_delta_events(store: MispStore, batch: DeltaBatch
                      ) -> Tuple[List[MispEvent], List[str]]:
    """Batch-fetch the events behind a delta (chunked, one round trip set).

    Returns ``(upserted_events, deleted_uuids)``.  An upsert uuid that no
    longer resolves (deleted after the feed window closed) is reported as
    deleted now — its own ``deleted`` feed row, processed later, is then a
    no-op, so consumers must treat deletes as idempotent.
    """
    deleted = list(batch.deleted)
    if not batch.upserts:
        return [], deleted
    fetched = store.get_events(batch.upserts)
    events: List[MispEvent] = []
    for uuid in batch.upserts:
        event = fetched.get(uuid)
        if event is None:
            deleted.append(uuid)
        else:
            events.append(event)
    return events, deleted


class DeltaCursor:
    """A named, optionally persisted position in the store's change feed.

    The in-memory generalization of PR 5's ``sync_state`` watermark: reads
    never advance the cursor implicitly (consume-then-advance keeps crash
    semantics at-least-once), and ``save()`` persists position + an opaque
    state blob to ``rollup_state`` only when something actually moved.
    """

    def __init__(self, store: MispStore, name: str,
                 persistent: bool = False) -> None:
        self.store = store
        self.name = name
        self.persistent = persistent
        self.position = 0
        self._dirty = False
        self._saved_state = ""
        if persistent:
            row = store.get_rollup(name)
            if row is not None:
                self.position = row[0]
                self._saved_state = row[1]

    @property
    def saved_state(self) -> str:
        """The state blob persisted alongside the position ('' if none)."""
        return self._saved_state

    def read(self, until_seq: Optional[int] = None,
             limit: Optional[int] = None) -> List[StoreChange]:
        """Feed rows past the cursor; does NOT advance it."""
        return self.store.changes_since(
            self.position, until_seq=until_seq, limit=limit)

    def advance(self, seq: int) -> None:
        """Move the cursor forward (never backward) after consuming."""
        if seq > self.position:
            self.position = seq
            self._dirty = True

    def save(self, state: str = "") -> bool:
        """Persist position + state if this cursor is persistent and moved."""
        if not self.persistent:
            return False
        if not self._dirty and state == self._saved_state:
            return False
        self.store.set_rollup(self.name, self.position, state)
        self._saved_state = state
        self._dirty = False
        return True


class StoreRollup:
    """Base class for a materialized view maintained from the change feed.

    Subclasses implement :meth:`apply_delta` (and, when persistent,
    :meth:`state_dict` / :meth:`restore_state` for the JSON checkpoint).
    A persistent rollup constructed over a store with saved state resumes
    from its checkpoint — no rescan — and its first ``refresh()`` after a
    quiet reopen consumes zero deltas.
    """

    def __init__(self, store: MispStore, name: str,
                 persistent: bool = False) -> None:
        self.store = store
        self.name = name
        self.cursor = DeltaCursor(store, name, persistent=persistent)
        if persistent and self.cursor.saved_state:
            self.restore_state(json.loads(self.cursor.saved_state))

    @property
    def position(self) -> int:
        return self.cursor.position

    def refresh(self, until_seq: Optional[int] = None) -> int:
        """Consume everything past the cursor; returns feed rows consumed."""
        changes = self.cursor.read(until_seq=until_seq)
        if not changes:
            return 0
        batch = collapse_changes(changes)
        events, deleted = load_delta_events(self.store, batch)
        self.ingest(batch, events, deleted)
        return len(changes)

    def ingest(self, batch: DeltaBatch, events: Sequence[MispEvent],
               deleted: Sequence[str]) -> None:
        """Apply one pre-loaded delta and advance (RollupGroup fast path)."""
        self.apply_delta(events, deleted)
        self.cursor.advance(batch.last_seq)

    def save(self) -> bool:
        """Checkpoint position + state (persistent rollups only)."""
        state = json.dumps(self.state_dict(), sort_keys=True) \
            if self.cursor.persistent else ""
        return self.cursor.save(state)

    # -- subclass hooks -------------------------------------------------------

    def apply_delta(self, events: Sequence[MispEvent],
                    deleted: Sequence[str]) -> None:
        """Fold changed events in / retire deleted uuids (idempotently)."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable checkpoint of the materialized state."""
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild materialized state from :meth:`state_dict` output."""


class RollupGroup:
    """Several rollups over one store, refreshed with one feed read.

    When every member's cursor sits at the same position (true from the
    second cycle on), one ``changes_since`` query and one chunked event
    fetch feed all of them; otherwise each member catches up individually
    and the group re-aligns.
    """

    def __init__(self, store: MispStore) -> None:
        self.store = store
        self.members: List[StoreRollup] = []

    def add(self, rollup: StoreRollup) -> StoreRollup:
        self.members.append(rollup)
        return rollup

    def refresh(self) -> int:
        """Bring every member current; returns feed rows consumed."""
        if not self.members:
            return 0
        positions = {rollup.position for rollup in self.members}
        if len(positions) > 1:
            return max(rollup.refresh() for rollup in self.members)
        changes = self.store.changes_since(positions.pop())
        if not changes:
            return 0
        batch = collapse_changes(changes)
        events, deleted = load_delta_events(self.store, batch)
        for rollup in self.members:
            rollup.ingest(batch, events, deleted)
        return len(changes)

    def save_all(self) -> int:
        """Checkpoint every persistent member; returns how many wrote."""
        return sum(1 for rollup in self.members if rollup.save())
