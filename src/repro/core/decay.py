"""IoC score decay over time (MISP decaying-models style).

Threat intelligence ages: a domain sighted a year ago is weaker evidence
than one sighted yesterday.  The paper encodes recency *at scoring time*
(the timeliness features); this module adds the complementary *continuous*
view used by MISP's decaying models so consumers can ask "what is this
eIoC's score worth **now**?" without re-running the heuristic analysis.

The decay follows MISP's polynomial model::

    score(t) = base_score * (1 - (t / lifetime) ** (1 / decay_speed))

clamped at zero once ``t`` reaches ``lifetime``.  As in MISP, a larger
``decay_speed`` decays *faster* early on (the exponent 1/decay_speed pulls
the ratio toward 1); ``decay_speed = 1`` gives a straight line.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..clock import Clock, SimulatedClock, ensure_utc
from ..errors import ValidationError
from ..misp import MispEvent, MispStore
from .ioc import threat_score_of


@dataclass(frozen=True)
class DecayModel:
    """Parameters of one decay curve."""

    lifetime: _dt.timedelta = _dt.timedelta(days=365)
    decay_speed: float = 3.0

    def __post_init__(self) -> None:
        if self.lifetime <= _dt.timedelta(0):
            raise ValidationError("lifetime must be positive")
        if self.decay_speed <= 0:
            raise ValidationError("decay_speed must be positive")

    def factor(self, age: _dt.timedelta) -> float:
        """The multiplicative decay factor in [0, 1] at a given age."""
        if age <= _dt.timedelta(0):
            return 1.0
        ratio = age / self.lifetime
        if ratio >= 1.0:
            return 0.0
        return 1.0 - ratio ** (1.0 / self.decay_speed)

    def current_score(self, base_score: float, age: _dt.timedelta) -> float:
        """The decayed score of a base score at a given age."""
        if not 0.0 <= base_score <= 5.0:
            raise ValidationError(f"base score out of range: {base_score}")
        return base_score * self.factor(age)

    def is_expired(self, age: _dt.timedelta) -> bool:
        """Whether an IoC of this age is past its lifetime."""
        return age >= self.lifetime


#: Default models per threat category.  Network indicators churn fast
#: (short lifetime, high decay_speed = steep early decay); hashes and
#: vulnerabilities stay actionable for years (long lifetime, decay_speed
#: below 1 = value holds up through most of the lifetime).
CATEGORY_MODELS = {
    "ip-blocklist": DecayModel(lifetime=_dt.timedelta(days=30), decay_speed=3.0),
    "malware-domains": DecayModel(lifetime=_dt.timedelta(days=90), decay_speed=2.5),
    "phishing": DecayModel(lifetime=_dt.timedelta(days=30), decay_speed=3.0),
    "malware-hashes": DecayModel(lifetime=_dt.timedelta(days=730), decay_speed=1.0),
    "vulnerability-exploitation": DecayModel(lifetime=_dt.timedelta(days=1095),
                                             decay_speed=0.8),
    "threat-news": DecayModel(lifetime=_dt.timedelta(days=60), decay_speed=2.0),
}

DEFAULT_MODEL = DecayModel()


@dataclass(frozen=True)
class DecayedScore:
    """The decayed view of one eIoC at one instant."""

    event_uuid: str
    base_score: float
    current_score: float
    age: _dt.timedelta
    expired: bool


class ScoreDecayEngine:
    """Computes current (decayed) scores over a MISP store's eIoCs."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SimulatedClock()

    def model_for(self, event: MispEvent) -> DecayModel:
        """Select the decay model for an event's category."""
        from .compose import tags_to_category
        category = tags_to_category(event)
        if category is not None and category in CATEGORY_MODELS:
            return CATEGORY_MODELS[category]
        return DEFAULT_MODEL

    def evaluate(self, event: MispEvent) -> Optional[DecayedScore]:
        """Decayed score of one eIoC; None when it carries no score."""
        base = threat_score_of(event)
        if base is None:
            return None
        age = self._clock.now() - ensure_utc(event.timestamp)
        model = self.model_for(event)
        return DecayedScore(
            event_uuid=event.uuid,
            base_score=base,
            current_score=model.current_score(base, age),
            age=age,
            expired=model.is_expired(age))

    def evaluate_summary(self, event_uuid: str, category: Optional[str],
                         base_score: float, timestamp: _dt.datetime
                         ) -> DecayedScore:
        """Decayed score from a pre-extracted (category, base, timestamp).

        Exactly equivalent to :meth:`evaluate` on the full event — the
        model choice (``CATEGORY_MODELS`` by category, else the default)
        and the curve are the same — but needs no event payload, so
        incrementally-maintained rollups can re-score from summaries
        without deserializing anything.
        """
        age = self._clock.now() - ensure_utc(timestamp)
        model = CATEGORY_MODELS.get(category) \
            if category is not None else None
        if model is None:
            model = DEFAULT_MODEL
        return DecayedScore(
            event_uuid=event_uuid,
            base_score=base_score,
            current_score=model.current_score(base_score, age),
            age=age,
            expired=model.is_expired(age))

    def sweep(self, store: MispStore) -> Tuple[List[DecayedScore], List[str]]:
        """Evaluate every scored event; returns (live scores, expired uuids)."""
        live: List[DecayedScore] = []
        expired: List[str] = []
        for event in store.list_events():
            decayed = self.evaluate(event)
            if decayed is None:
                continue
            if decayed.expired:
                expired.append(decayed.event_uuid)
            else:
                live.append(decayed)
        return live, expired

    def purge_expired(self, store: MispStore) -> int:
        """Delete expired eIoCs from the store; returns how many were removed.

        Store maintenance MISP deployments run periodically: indicators past
        their lifetime add noise to correlation and search without evidence
        value.  Only *scored* events are candidates — raw cIoCs and
        infrastructure events are never aged out.
        """
        _live, expired = self.sweep(store)
        removed = 0
        for event_uuid in expired:
            if store.delete_event(event_uuid):
                removed += 1
        return removed
