"""Normalization of parsed feed records into the common event model.

"Normalization is required since OSINT data comes in various formats, such
as plaintext and csv.  Therefore, to process correctly the security events
received, it is necessary that they should be in a common format" (§III-A1).

Free-text records additionally go through the NLP substrate: threat-category
tagging, relevance classification (with confidence) and entity extraction —
the §II-A enhancements.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..feeds import FeedRecord
from ..ids import content_uuid
from ..nlp import GazetteerExtractor, RelevanceClassifier, ThreatTagger, extract_iocs


@dataclass(frozen=True)
class NormalizedEvent:
    """The platform's common security-event format.

    ``uid`` is *content-derived*: the same indicator reported by two feeds
    maps to the same uid, which is what makes deduplication a set lookup.
    """

    uid: str
    category: str
    indicator_type: str
    value: str
    description: str
    feed_name: str
    source_type: str
    observed_at: Optional[_dt.datetime]
    fields: Mapping[str, Any] = field(default_factory=dict)
    #: NLP annotations (only populated for text events).
    threat_categories: Tuple[str, ...] = ()
    relevant: Optional[bool] = None
    relevance_confidence: Optional[float] = None
    extracted: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_text(self) -> bool:
        """Whether this is a free-text (news) event."""
        return self.indicator_type == "text"


class Normalizer:
    """Stateless-per-record normalizer with shared NLP components."""

    def __init__(self, tagger: Optional[ThreatTagger] = None,
                 classifier: Optional[RelevanceClassifier] = None,
                 gazetteer: Optional[GazetteerExtractor] = None) -> None:
        self._tagger = tagger or ThreatTagger()
        self._classifier = classifier or RelevanceClassifier()
        self._gazetteer = gazetteer or GazetteerExtractor()

    def normalize(self, record: FeedRecord) -> NormalizedEvent:
        """Map one parsed feed record onto the common format."""
        if record.indicator_type == "text":
            return self._normalize_text(record)
        value = record.value.strip()
        if record.indicator_type in ("domain", "url", "md5", "sha1", "sha256"):
            value = value.lower()
        if record.indicator_type == "cve":
            value = value.upper()
        description = str(record.fields.get("summary", "")) or \
            f"{record.indicator_type} indicator from feed {record.feed_name}"
        return NormalizedEvent(
            uid=content_uuid(record.indicator_type, value),
            category=record.category,
            indicator_type=record.indicator_type,
            value=value,
            description=description,
            feed_name=record.feed_name,
            source_type=record.source_type,
            observed_at=record.observed_at,
            fields=dict(record.fields),
        )

    def _normalize_text(self, record: FeedRecord) -> NormalizedEvent:
        text = str(record.fields.get("text", "")) or record.value
        title = str(record.fields.get("title", "")) or record.value
        blob = f"{title}. {text}"
        tags = self._tagger.categories(blob)
        prediction = self._classifier.predict(blob)
        entities = extract_iocs(blob)
        named = self._gazetteer.extract(blob)
        extracted: Dict[str, Tuple[str, ...]] = {
            k: v for k, v in entities.as_dict().items() if v
        }
        for kind, names in named.items():
            extracted[kind] = tuple(names)
        return NormalizedEvent(
            # Text identity is the title: two feeds carrying the same story
            # (same headline) deduplicate even if the body differs slightly.
            uid=content_uuid("text", title.lower()),
            category=record.category,
            indicator_type="text",
            value=title,
            description=text,
            feed_name=record.feed_name,
            source_type=record.source_type,
            observed_at=record.observed_at,
            fields=dict(record.fields),
            threat_categories=tuple(tags),
            relevant=prediction.label == RelevanceClassifier.RELEVANT,
            relevance_confidence=prediction.confidence,
            extracted=extracted,
        )

    def normalize_all(self, records: List[FeedRecord]) -> List[NormalizedEvent]:
        """Normalize a batch of feed records."""
        return [self.normalize(record) for record in records]
