"""Dead-letter quarantine for documents and events the pipeline rejects.

Two kinds of payload land here: raw :class:`FeedDocument` snapshots whose
parse/normalize failed, and composed :class:`MispEvent` batches that
exhausted their store retries.  Every entry carries the failure reason and
a clock timestamp; entries deduplicate on content (re-quarantining the
same payload bumps ``attempts`` instead of growing the queue).  ``replay``
drains the queue back through the collector (documents) and the MISP
instance (events) once the fault has cleared; payloads that fail again
re-quarantine themselves through the same hooks.

The module deliberately avoids importing the feeds/misp packages at module
level (they import the resilience package themselves); payloads are held
as opaque objects and only (de)serialized lazily.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..clock import Clock, SimulatedClock, format_timestamp, parse_timestamp
from ..errors import ReproError
from ..obs import MetricsRegistry, NULL_REGISTRY

KIND_DOCUMENT = "document"
KIND_EVENT = "event"
KIND_SHARE = "share"


@dataclass
class DeadLetter:
    """One quarantined payload: a feed document, a composed event, or a
    failed share (an event plus the external entity it was bound for)."""

    kind: str
    source: str
    reason: str
    quarantined_at: _dt.datetime
    attempts: int = 1
    document: Any = None
    event: Any = None
    #: For :data:`KIND_SHARE`: the external entity the share targeted.
    entity: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (used by ``caop deadletter`` and save/load)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "source": self.source,
            "reason": self.reason,
            "quarantined_at": format_timestamp(self.quarantined_at),
            "attempts": self.attempts,
        }
        if self.document is not None:
            descriptor = self.document.descriptor
            payload["document"] = {
                "descriptor": {
                    "name": descriptor.name,
                    "url": descriptor.url,
                    "format": descriptor.format,
                    "category": descriptor.category,
                },
                "body": self.document.body,
                "fetched_at": format_timestamp(self.document.fetched_at),
                "etag": self.document.etag,
            }
        if self.event is not None:
            payload["event"] = self.event.to_dict()
        if self.entity is not None:
            payload["entity"] = self.entity
        return payload


@dataclass
class ReplayReport:
    """What one ``DeadLetterQueue.replay`` pass accomplished."""

    attempted: int = 0
    documents_replayed: int = 0
    events_replayed: int = 0
    shares_replayed: int = 0
    ciocs_created: int = 0
    eiocs_created: int = 0
    requeued: int = 0
    errors: List[str] = field(default_factory=list)


class DeadLetterQueue:
    """Content-deduplicated quarantine with replay back into the pipeline."""

    def __init__(self, clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 max_entries: int = 10_000) -> None:
        self._clock = clock or SimulatedClock()
        self._lock = threading.Lock()
        self._entries: Dict[tuple, DeadLetter] = {}
        self._max_entries = max_entries
        metrics = metrics or NULL_REGISTRY
        self._m_total = metrics.counter(
            "caop_deadletter_total", "Payloads quarantined to the dead-letter queue")
        self._m_depth = metrics.gauge(
            "caop_deadletter_depth", "Entries currently quarantined")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[DeadLetter]:
        """The quarantined entries, oldest first."""
        with self._lock:
            return list(self._entries.values())

    def _put(self, key: tuple, letter: DeadLetter) -> None:
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                existing.attempts += 1
                existing.reason = letter.reason
                existing.quarantined_at = letter.quarantined_at
            elif len(self._entries) < self._max_entries:
                self._entries[key] = letter
            self._m_depth.set(len(self._entries))
        self._m_total.inc(kind=letter.kind)

    def quarantine_document(self, document: Any, reason: str,
                            source: Optional[str] = None) -> None:
        """Quarantine a raw feed document that failed parse/normalize."""
        name = source or document.descriptor.name
        body_digest = hashlib.sha256(document.body.encode()).hexdigest()
        key = (KIND_DOCUMENT, name, body_digest)
        self._put(key, DeadLetter(
            kind=KIND_DOCUMENT, source=name, reason=reason,
            quarantined_at=self._clock.now(), document=document))

    def quarantine_events(self, events: Any, reason: str,
                          source: str = "misp-store") -> None:
        """Quarantine composed events that exhausted their store retries."""
        for event in events:
            key = (KIND_EVENT, event.uuid)
            self._put(key, DeadLetter(
                kind=KIND_EVENT, source=source, reason=reason,
                quarantined_at=self._clock.now(), event=event))

    def quarantine_share(self, entity: str, event: Any, reason: str) -> None:
        """Quarantine a share that exhausted its transport retries."""
        key = (KIND_SHARE, entity, event.uuid)
        self._put(key, DeadLetter(
            kind=KIND_SHARE, source=f"share:{entity}", reason=reason,
            quarantined_at=self._clock.now(), event=event, entity=entity))

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._m_depth.set(0)
        return dropped

    # -- replay ---------------------------------------------------------------

    def replay(self, collector: Any = None, misp: Any = None,
               gateway: Any = None) -> ReplayReport:
        """Push every entry back through the pipeline.

        Documents re-enter via ``collector.process_documents`` (parse →
        ... → store), events re-enter via ``misp.add_events``, failed
        shares re-drive their transport via ``gateway.replay_share``.
        Entries whose kind has no matching target stay quarantined;
        payloads that fail again re-quarantine themselves through the
        collector/instance hooks (or are re-queued directly for shares)
        and show up in ``requeued``.
        """
        with self._lock:
            snapshot = list(self._entries.items())
            self._entries.clear()
            self._m_depth.set(0)
        report = ReplayReport(attempted=len(snapshot))
        documents = [letter for _key, letter in snapshot
                     if letter.kind == KIND_DOCUMENT]
        events = [letter for _key, letter in snapshot
                  if letter.kind == KIND_EVENT]
        shares = [(key, letter) for key, letter in snapshot
                  if letter.kind == KIND_SHARE]
        if documents:
            if collector is None:
                for _key, letter in snapshot:
                    if letter.kind == KIND_DOCUMENT:
                        self._put(_key, letter)
            else:
                try:
                    ciocs, _sub = collector.process_documents(
                        [letter.document for letter in documents])
                    report.documents_replayed = len(documents)
                    report.ciocs_created = len(ciocs)
                except ReproError as exc:  # pragma: no cover - defensive
                    report.errors.append(f"document replay: {exc}")
        if events:
            if misp is None:
                for _key, letter in snapshot:
                    if letter.kind == KIND_EVENT:
                        self._put(_key, letter)
            else:
                try:
                    misp.add_events([letter.event for letter in events])
                    report.events_replayed = len(events)
                except ReproError as exc:
                    # add_events re-quarantined the batch (or raised a
                    # permanent storage error); either way it is recorded.
                    report.errors.append(f"event replay: {exc}")
        for key, letter in shares:
            if gateway is None:
                self._put(key, letter)
                continue
            try:
                delivered = gateway.replay_share(letter.entity, letter.event)
            except ReproError as exc:
                report.errors.append(f"share replay ({letter.entity}): {exc}")
                delivered = False
            if delivered:
                report.shares_replayed += 1
            else:
                self._put(key, letter)
        report.requeued = len(self)
        return report

    # -- persistence ----------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The whole queue as a JSON document."""
        return json.dumps([letter.to_dict() for letter in self.entries()],
                          indent=indent)

    def save(self, path: str) -> None:
        """Write the queue to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def load(self, path: str) -> int:
        """Merge entries from a JSON file back in; returns how many loaded."""
        from ..feeds.model import FeedDescriptor, FeedDocument
        from ..misp.model import MispEvent

        with open(path) as handle:
            payloads = json.load(handle)
        loaded = 0
        for payload in payloads:
            kind = payload["kind"]
            when = parse_timestamp(payload["quarantined_at"])
            if kind == KIND_DOCUMENT:
                raw = payload["document"]
                descriptor = FeedDescriptor(
                    name=raw["descriptor"]["name"],
                    url=raw["descriptor"]["url"],
                    format=raw["descriptor"]["format"],
                    category=raw["descriptor"]["category"])
                document = FeedDocument(
                    descriptor=descriptor, body=raw["body"],
                    fetched_at=parse_timestamp(raw["fetched_at"]),
                    etag=raw.get("etag"))
                digest = hashlib.sha256(document.body.encode()).hexdigest()
                key = (KIND_DOCUMENT, payload["source"], digest)
                letter = DeadLetter(
                    kind=kind, source=payload["source"],
                    reason=payload["reason"], quarantined_at=when,
                    attempts=payload.get("attempts", 1), document=document)
            elif kind == KIND_EVENT:
                event = MispEvent.from_dict(payload["event"])
                key = (KIND_EVENT, event.uuid)
                letter = DeadLetter(
                    kind=kind, source=payload["source"],
                    reason=payload["reason"], quarantined_at=when,
                    attempts=payload.get("attempts", 1), event=event)
            elif kind == KIND_SHARE:
                event = MispEvent.from_dict(payload["event"])
                entity = payload["entity"]
                key = (KIND_SHARE, entity, event.uuid)
                letter = DeadLetter(
                    kind=kind, source=payload["source"],
                    reason=payload["reason"], quarantined_at=when,
                    attempts=payload.get("attempts", 1), event=event,
                    entity=entity)
            else:
                continue
            with self._lock:
                if key not in self._entries and \
                        len(self._entries) < self._max_entries:
                    self._entries[key] = letter
                    loaded += 1
                self._m_depth.set(len(self._entries))
        return loaded
