"""Per-component health snapshots (ok / degraded / failing).

The platform assembles one :class:`PlatformHealth` after every cycle from
three signals: each feed's breaker state (closed → ok, half-open →
degraded, open → failing), each pipeline stage's recent ``stage_errors``
history (one errored cycle → degraded, two consecutive → failing), and the
dead-letter queue depth.  The snapshot is exported as
``caop_component_health`` gauges and rendered on the dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import MetricsRegistry

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_FAILING = "failing"

#: Gauge encoding for ``caop_component_health``.
HEALTH_VALUES = {HEALTH_OK: 0, HEALTH_DEGRADED: 1, HEALTH_FAILING: 2}

_SEVERITY = {HEALTH_OK: 0, HEALTH_DEGRADED: 1, HEALTH_FAILING: 2}


@dataclass
class ComponentHealth:
    """One component's status with a short human-readable detail."""

    component: str
    status: str
    detail: str = ""


@dataclass
class PlatformHealth:
    """The whole platform's component statuses at one instant."""

    components: List[ComponentHealth] = field(default_factory=list)

    def status_of(self, component: str) -> Optional[str]:
        """The status of one component, or None if not tracked."""
        for entry in self.components:
            if entry.component == component:
                return entry.status
        return None

    def overall(self) -> str:
        """The worst status across every component."""
        worst = HEALTH_OK
        for entry in self.components:
            if _SEVERITY.get(entry.status, 0) > _SEVERITY[worst]:
                worst = entry.status
        return worst

    def to_dict(self) -> Dict[str, Dict[str, str]]:
        """component → {status, detail} (JSON-friendly)."""
        return {entry.component: {"status": entry.status,
                                  "detail": entry.detail}
                for entry in self.components}

    def export(self, metrics: MetricsRegistry) -> None:
        """Publish the snapshot as ``caop_component_health`` gauges."""
        gauge = metrics.gauge(
            "caop_component_health",
            "Component health (0=ok, 1=degraded, 2=failing)")
        for entry in self.components:
            gauge.set(HEALTH_VALUES[entry.status], component=entry.component)
