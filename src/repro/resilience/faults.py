"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s scripted over the
pipeline's seams (``transport``, ``store``, ``parse``, ``broker``).  The
:class:`FaultInjector` evaluates the plan at each instrumented call: a rule
can fire on explicit invocation indices (``calls``), on a half-open index
window (``from_call``/``until_call``), or at a ``rate`` decided by hashing
``(seed, component, key, index)`` — never by wall clock or :mod:`random`
state, so the same plan over the same workload injects the identical fault
sequence at any thread count, every run.

``clear()`` simulates the fault condition going away (rules stop firing;
call counters keep advancing so indices stay aligned); ``resume()`` turns
the plan back on.
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    ConfigurationError,
    ParseError,
    ReproError,
    SharingError,
    TransientFeedError,
    TransientStorageError,
)

#: Seams an injector can fault, with the error type each one raises.
COMPONENT_ERRORS = {
    "transport": TransientFeedError,
    "store": TransientStorageError,
    "parse": ParseError,
    "broker": SharingError,
    "share": SharingError,
    "link": SharingError,
}

#: Key format for the ``link`` seam: a directed federation edge.
def link_key(src: str, dst: str) -> str:
    """Seam key for the directed backbone link ``src`` → ``dst``."""
    return f"{src}->{dst}"


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault over a (component, key) seam.

    ``key`` is an :mod:`fnmatch` pattern over the seam's key (feed URL for
    ``transport``, feed name for ``parse``, batch entry point for
    ``store``, topic for ``broker``).  A rule fires when the invocation
    index is in ``calls``, falls inside ``[from_call, until_call)``, or —
    for ``rate`` — when the deterministic hash draw lands below the rate.
    """

    component: str
    key: str = "*"
    rate: float = 0.0
    calls: Tuple[int, ...] = ()
    from_call: Optional[int] = None
    until_call: Optional[int] = None
    reason: str = "injected fault"

    def __post_init__(self) -> None:
        if self.component not in COMPONENT_ERRORS:
            raise ConfigurationError(
                f"unknown fault component {self.component!r} "
                f"(expected one of {sorted(COMPONENT_ERRORS)})")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("rate must be within [0, 1]")

    def applies(self, component: str, key: str) -> bool:
        """Whether this rule covers the given seam."""
        return component == self.component and fnmatch.fnmatch(key, self.key)

    def fires(self, index: int, fraction: float) -> bool:
        """Whether this rule injects a fault at invocation ``index``."""
        if index in self.calls:
            return True
        if self.from_call is not None or self.until_call is not None:
            low = self.from_call or 0
            if index >= low and (self.until_call is None
                                 or index < self.until_call):
                return True
        return self.rate > 0.0 and fraction < self.rate

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the fault-plan file format)."""
        payload: Dict[str, Any] = {"component": self.component, "key": self.key}
        if self.rate:
            payload["rate"] = self.rate
        if self.calls:
            payload["calls"] = list(self.calls)
        if self.from_call is not None:
            payload["from_call"] = self.from_call
        if self.until_call is not None:
            payload["until_call"] = self.until_call
        if self.reason != "injected fault":
            payload["reason"] = self.reason
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        """Revive a rule from its dict form."""
        return cls(
            component=data["component"],
            key=data.get("key", "*"),
            rate=data.get("rate", 0.0),
            calls=tuple(data.get("calls", ())),
            from_call=data.get("from_call"),
            until_call=data.get("until_call"),
            reason=data.get("reason", "injected fault"))


@dataclass
class FaultPlan:
    """A seeded script of fault rules."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Revive a plan from its dict form."""
        return cls(seed=data.get("seed", 0),
                   rules=[FaultRule.from_dict(raw)
                          for raw in data.get("rules", ())])


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the pipeline's instrumented seams."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, str], int] = {}
        #: (component, key) → faults injected so far.
        self.injected: Dict[Tuple[str, str], int] = {}
        self.active = True
        #: Disjoint org groups; orgs in different groups cannot reach
        #: each other.  Orgs absent from every group reach everyone.
        self._partitions: Tuple[frozenset, ...] = ()
        #: Imperative link rules (``lossy``) layered over the plan.
        self._link_rules: List[FaultRule] = []

    def clear(self) -> None:
        """Stop injecting (the fault condition has cleared).

        Call counters keep advancing so index-based rules stay aligned if
        the plan is later :meth:`resume`\\ d.  Partitions and imperative
        link rules are also dropped, mirroring :meth:`heal`.
        """
        self.active = False
        with self._lock:
            self._partitions = ()
            self._link_rules = []

    def resume(self) -> None:
        """Start injecting again."""
        self.active = True

    def partition(self, *groups) -> None:
        """Split the federation into disjoint ``groups`` of org names.

        Two orgs in *different* groups are disconnected: every
        :meth:`check_link` between them raises :class:`SharingError`.
        Orgs not named in any group stay connected to everyone.
        """
        sets = tuple(frozenset(group) for group in groups if group)
        seen: set = set()
        for group in sets:
            overlap = seen & group
            if overlap:
                raise ConfigurationError(
                    f"partition groups must be disjoint (shared: {sorted(overlap)})")
            seen |= group
        with self._lock:
            self._partitions = sets

    def heal(self) -> None:
        """Reconnect every link: drop partitions and imperative link rules."""
        with self._lock:
            self._partitions = ()
            self._link_rules = []

    def lossy(self, src: str, dst: str, rate: float,
              reason: str = "lossy link") -> None:
        """Make the directed link ``src`` → ``dst`` drop messages at ``rate``.

        Layered on top of any scripted plan rules; removed by
        :meth:`heal`.  The drop schedule is deterministic — the same
        hash-draw machinery as plan rules.
        """
        rule = FaultRule(component="link", key=link_key(src, dst),
                         rate=rate, reason=reason)
        with self._lock:
            self._link_rules.append(rule)

    def _partitioned(self, src: str, dst: str) -> bool:
        for group in self._partitions:
            in_src = src in group
            in_dst = dst in group
            if in_src != in_dst:
                # One side is in this group, the other is outside it; the
                # outside org is disconnected iff it belongs to another group.
                other = dst if in_src else src
                if any(other in g for g in self._partitions):
                    return True
        return False

    def check_link(self, src: str, dst: str) -> None:
        """Raise :class:`SharingError` if the ``src`` → ``dst`` link is down.

        Partitions fire first (hard disconnect), then scripted plan rules
        and imperative ``lossy`` rules over the ``link`` seam, all sharing
        one deterministic per-link invocation counter.
        """
        key = link_key(src, dst)
        with self._lock:
            counter_key = ("link", key)
            index = self._counts.get(counter_key, 0)
            self._counts[counter_key] = index + 1
            if self._partitioned(src, dst):
                self.injected[counter_key] = \
                    self.injected.get(counter_key, 0) + 1
                raise SharingError(f"link partitioned [{key}#{index}]")
            if not self.active:
                return
            fraction = self._fraction("link", key, index)
            for rule in list(self.plan.rules) + self._link_rules:
                if rule.applies("link", key) and rule.fires(index, fraction):
                    self.injected[counter_key] = \
                        self.injected.get(counter_key, 0) + 1
                    raise SharingError(
                        f"{rule.reason} [link:{key}#{index}]")

    def injected_total(self) -> int:
        """Total faults injected across every seam."""
        with self._lock:
            return sum(self.injected.values())

    def _fraction(self, component: str, key: str, index: int) -> float:
        digest = hashlib.sha256(
            f"{self.plan.seed}:{component}:{key}:{index}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def check(self, component: str, key: str,
              index: Optional[int] = None) -> None:
        """Raise the component's error type if the plan injects a fault here.

        ``index`` defaults to an internal per-(component, key) counter;
        seams that already track a deterministic invocation index (the
        transport's per-URL request counter) pass their own so the plan
        aligns with the seam's native numbering at any worker count.
        """
        with self._lock:
            if index is None:
                counter_key = (component, key)
                index = self._counts.get(counter_key, 0)
                self._counts[counter_key] = index + 1
            if not self.active:
                return
            fraction = self._fraction(component, key, index)
            for rule in self.plan.rules:
                if rule.applies(component, key) and rule.fires(index, fraction):
                    self.injected[(component, key)] = \
                        self.injected.get((component, key), 0) + 1
                    error_type = COMPONENT_ERRORS.get(rule.component, ReproError)
                    raise error_type(
                        f"{rule.reason} [{component}:{key}#{index}]")
