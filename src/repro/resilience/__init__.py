"""Fault tolerance for the always-on pipeline: breakers, backoff, quarantine.

The operational loop of the paper's platform must keep cIoCs flowing when
individual feeds, stores or stages misbehave.  This package provides the
clock-driven machinery the rest of the pipeline threads through:

- :class:`CircuitBreaker` / :class:`CircuitBreakerBoard` — per-feed
  closed → open → half-open breakers measured on the platform clock;
- :class:`RetryPolicy` + sleepers — exponential backoff with
  deterministic jitter that advances the simulated clock instead of
  sleeping;
- :class:`DeadLetterQueue` — replayable quarantine for parse-failing
  documents and store-exhausted events;
- :class:`PlatformHealth` — per-component ok/degraded/failing snapshots;
- :class:`FaultInjector` — scripted, deterministic fault plans powering
  the chaos suite and ``bench_x15_chaos_recovery``.

See ``docs/RESILIENCE.md`` for semantics and the fault-plan format.
"""

from .breaker import STATE_VALUES, BreakerState, CircuitBreaker, CircuitBreakerBoard
from .deadletter import (
    KIND_DOCUMENT,
    KIND_EVENT,
    KIND_SHARE,
    DeadLetter,
    DeadLetterQueue,
    ReplayReport,
)
from .faults import COMPONENT_ERRORS, FaultInjector, FaultPlan, FaultRule, link_key
from .health import (
    HEALTH_DEGRADED,
    HEALTH_FAILING,
    HEALTH_OK,
    HEALTH_VALUES,
    ComponentHealth,
    PlatformHealth,
)
from .retry import (
    ClockAdvancingSleeper,
    RealSleeper,
    RecordingSleeper,
    RetryPolicy,
    sleeper_for,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "ClockAdvancingSleeper",
    "ComponentHealth",
    "COMPONENT_ERRORS",
    "DeadLetter",
    "DeadLetterQueue",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "HEALTH_DEGRADED",
    "HEALTH_FAILING",
    "HEALTH_OK",
    "HEALTH_VALUES",
    "KIND_DOCUMENT",
    "KIND_EVENT",
    "KIND_SHARE",
    "PlatformHealth",
    "RealSleeper",
    "RecordingSleeper",
    "ReplayReport",
    "RetryPolicy",
    "STATE_VALUES",
    "link_key",
    "sleeper_for",
]
