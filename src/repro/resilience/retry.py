"""Retry discipline: exponential backoff with deterministic jitter.

The platform never sleeps between retries on the simulated clock — the
policy *computes* each delay (a pure function of ``(key, attempt)``) and a
pluggable sleeper applies the accumulated total, either by advancing a
:class:`~repro.clock.SimulatedClock`, by really sleeping (wall-clock
benches), or by merely recording it.  Because the delay draw is keyed on
the feed and attempt number, not on thread interleaving, the backoff
schedule is identical for any fetch-pool size.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import time
from typing import List, Optional

from ..clock import Clock, SimulatedClock
from ..errors import ConfigurationError


class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``delay(key, attempt)`` returns the wait before retry ``attempt``
    (0-based): ``base * multiplier**attempt`` capped at ``max_delay``, then
    shrunk by up to ``jitter`` (a fraction in [0, 1]) using a draw from
    ``sha256(seed:key:attempt)``.  Same seed + key + attempt → same delay,
    on any thread, in any order.
    """

    def __init__(self, max_retries: int = 2,
                 base_delay_seconds: float = 0.5,
                 multiplier: float = 2.0,
                 max_delay_seconds: float = 60.0,
                 jitter: float = 0.5,
                 seed: int = 0) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if base_delay_seconds < 0:
            raise ConfigurationError("base_delay_seconds must be non-negative")
        if multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be within [0, 1]")
        self.max_retries = max_retries
        self._base = base_delay_seconds
        self._multiplier = multiplier
        self._max_delay = max_delay_seconds
        self._jitter = jitter
        self._seed = seed

    def delay(self, key: str, attempt: int) -> float:
        """Backoff (seconds) before retry ``attempt`` of operation ``key``."""
        bounded = min(self._base * self._multiplier ** attempt, self._max_delay)
        if self._jitter == 0.0 or bounded == 0.0:
            return bounded
        digest = hashlib.sha256(
            f"{self._seed}:{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return bounded * (1.0 - self._jitter * fraction)

    def schedule(self, key: str) -> List[float]:
        """The full deterministic backoff schedule for ``key``."""
        return [self.delay(key, attempt) for attempt in range(self.max_retries)]


class ClockAdvancingSleeper:
    """Applies backoff by advancing a :class:`SimulatedClock` — no wall time."""

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self.total_slept = 0.0

    def sleep(self, seconds: float) -> None:
        """Advance the simulated clock by ``seconds``."""
        if seconds <= 0:
            return
        self.total_slept += seconds
        self._clock.advance(_dt.timedelta(seconds=seconds))


class RealSleeper:
    """Applies backoff with :func:`time.sleep` (realtime transports only)."""

    def __init__(self) -> None:
        self.total_slept = 0.0

    def sleep(self, seconds: float) -> None:
        """Really sleep ``seconds``."""
        if seconds <= 0:
            return
        self.total_slept += seconds
        time.sleep(seconds)


class RecordingSleeper:
    """Records backoff without moving any clock (parity benches, tests)."""

    def __init__(self) -> None:
        self.total_slept = 0.0
        self.sleeps: List[float] = []

    def sleep(self, seconds: float) -> None:
        """Record ``seconds`` of requested backoff."""
        if seconds <= 0:
            return
        self.total_slept += seconds
        self.sleeps.append(seconds)


def sleeper_for(mode: str, clock: Optional[Clock] = None):
    """Build the sleeper for a ``backoff_mode`` config value.

    ``virtual`` advances the simulated clock (falls back to recording when
    the clock is not simulated), ``real`` really sleeps, ``none`` records
    only — the mode the chaos-recovery bench uses to keep every timestamp
    pinned while still measuring the schedule.
    """
    if mode == "virtual":
        if isinstance(clock, SimulatedClock):
            return ClockAdvancingSleeper(clock)
        return RecordingSleeper()
    if mode == "real":
        return RealSleeper()
    if mode == "none":
        return RecordingSleeper()
    raise ConfigurationError(
        f"unknown backoff mode {mode!r} (expected virtual/real/none)")
