"""Per-feed circuit breakers measured on the platform clock.

A breaker is *closed* (requests flow) until ``failure_threshold``
consecutive failures open it.  While *open*, every request is refused
without touching the transport.  Once ``cooldown_seconds`` have elapsed on
the injected :class:`~repro.clock.Clock`, the next request transitions the
breaker to *half-open* and goes through as a single probe (no retry
burst): success closes the breaker, failure re-opens it and restarts the
cooldown.  All transitions are timestamped on the same clock, so a
simulated run replays the identical open/close sequence every time.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import Dict, List, Optional, Tuple

from ..clock import Clock, SimulatedClock
from ..errors import ConfigurationError
from ..obs import MetricsRegistry, NULL_REGISTRY


class BreakerState:
    """The three breaker states (string constants)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding for ``caop_breaker_state``.
STATE_VALUES = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class CircuitBreaker:
    """One feed's breaker: closed → open → half-open probe → closed."""

    def __init__(self, name: str, clock: Optional[Clock] = None,
                 failure_threshold: int = 3,
                 cooldown_seconds: float = 300.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be non-negative")
        self.name = name
        self._clock = clock or SimulatedClock()
        self._threshold = failure_threshold
        self._cooldown = _dt.timedelta(seconds=cooldown_seconds)
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[_dt.datetime] = None
        self._probe_inflight = False
        #: (state, transition timestamp) history, initial state excluded.
        self.transitions: List[Tuple[str, _dt.datetime]] = []
        metrics = metrics or NULL_REGISTRY
        self._m_state = metrics.gauge(
            "caop_breaker_state",
            "Breaker state per feed (0=closed, 1=half-open, 2=open)")
        self._m_opens = metrics.counter(
            "caop_breaker_opens_total", "Breaker close→open transitions per feed")
        self._m_state.set(STATE_VALUES[self._state], feed=name)

    @property
    def state(self) -> str:
        """The current state string."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Consecutive failures recorded while closed."""
        with self._lock:
            return self._consecutive_failures

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append((state, self._clock.now()))
        self._m_state.set(STATE_VALUES[state], feed=self.name)
        if state == BreakerState.OPEN:
            self._opened_at = self._clock.now()
            self._m_opens.inc(feed=self.name)

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        An open breaker past its cooldown moves to half-open and admits the
        caller as the probe; further callers are refused until the probe's
        outcome is recorded.
        """
        with self._lock:
            if self._state == BreakerState.CLOSED:
                return True
            if self._state == BreakerState.OPEN:
                assert self._opened_at is not None
                if self._clock.now() - self._opened_at >= self._cooldown:
                    self._transition(BreakerState.HALF_OPEN)
                    self._probe_inflight = True
                    return True
                return False
            # Half-open: exactly one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """A request succeeded: reset failures, close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A request failed: count it; trip (or re-trip) past the threshold."""
        with self._lock:
            self._probe_inflight = False
            if self._state == BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
                return
            if self._state == BreakerState.OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self._threshold:
                self._transition(BreakerState.OPEN)

    def transition_log(self) -> List[Tuple[str, str]]:
        """The transitions as (state, ISO timestamp) pairs (serializable)."""
        with self._lock:
            return [(state, when.isoformat()) for state, when in self.transitions]


class CircuitBreakerBoard:
    """Lazily-created per-feed breakers sharing one clock and config."""

    def __init__(self, clock: Optional[Clock] = None,
                 failure_threshold: int = 3,
                 cooldown_seconds: float = 300.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._clock = clock or SimulatedClock()
        self._threshold = failure_threshold
        self._cooldown = cooldown_seconds
        self._metrics = metrics
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        """Get (or create) the breaker guarding feed ``name``."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    name, clock=self._clock,
                    failure_threshold=self._threshold,
                    cooldown_seconds=self._cooldown,
                    metrics=self._metrics)
                self._breakers[name] = breaker
            return breaker

    def states(self) -> Dict[str, str]:
        """feed name → current state, for every breaker created so far."""
        with self._lock:
            return {name: breaker.state
                    for name, breaker in self._breakers.items()}

    def transition_logs(self) -> Dict[str, List[Tuple[str, str]]]:
        """feed name → (state, ISO timestamp) transition history."""
        with self._lock:
            return {name: breaker.transition_log()
                    for name, breaker in self._breakers.items()}
