"""Relevance classifier for OSINT text.

§II-A: tag OSINT data as *relevant* or *irrelevant* to the monitored
infrastructure, and include "the prediction confidence of the classifier ...
in the data sent to SIEMs, which will help to avoid the issue of false
alarms".

A multinomial naive Bayes text classifier built from scratch (bag of words,
add-one smoothing, log-space).  ``predict`` returns the label and a
confidence in [0.5, 1.0] (posterior probability of the winning class).
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ValidationError

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9._-]+")

_STOPWORDS = frozenset(
    "the a an and or of to in on for with from by at as is are was were be "
    "been it its this that these those has have had not no".split()
)


def _stem(token: str) -> str:
    """Crude suffix stripper so 'exploited'/'exploits'/'exploit' collide."""
    for suffix in ("ing", "ed", "es", "s"):
        if token.endswith(suffix) and len(token) - len(suffix) >= 4:
            return token[: -len(suffix)]
    return token


def tokenize(text: str) -> List[str]:
    """Lowercase word tokenizer with stopword removal and light stemming."""
    return [_stem(t) for t in _TOKEN_RE.findall(text.lower()) if t not in _STOPWORDS]


@dataclass(frozen=True)
class Prediction:
    """A classification outcome: label plus posterior confidence."""

    label: str
    confidence: float
    log_scores: Mapping[str, float]


class NaiveBayesClassifier:
    """Multinomial naive Bayes with Laplace smoothing."""

    def __init__(self) -> None:
        self._class_token_counts: Dict[str, Counter] = {}
        self._class_doc_counts: Dict[str, int] = {}
        self._vocabulary: set = set()
        self._total_docs = 0

    @property
    def labels(self) -> List[str]:
        """The class labels seen in training."""
        return sorted(self._class_doc_counts)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen in training."""
        return len(self._vocabulary)

    def train(self, text: str, label: str) -> None:
        """Add one labelled document to the model."""
        tokens = tokenize(text)
        bucket = self._class_token_counts.setdefault(label, Counter())
        bucket.update(tokens)
        self._vocabulary.update(tokens)
        self._class_doc_counts[label] = self._class_doc_counts.get(label, 0) + 1
        self._total_docs += 1

    def train_many(self, samples: Iterable[Tuple[str, str]]) -> None:
        """Train on an iterable of (text, label) pairs."""
        for text, label in samples:
            self.train(text, label)

    def predict(self, text: str) -> Prediction:
        """Classify a document; raises if the model has not been trained."""
        if not self._class_doc_counts:
            raise ValidationError("classifier has not been trained")
        # Tokens no class has ever seen carry no signal; keeping them would
        # systematically favour whichever class has fewer training tokens
        # (its smoothed unseen-token probability is larger).
        tokens = [t for t in tokenize(text) if t in self._vocabulary]
        vocab = max(1, len(self._vocabulary))
        log_scores: Dict[str, float] = {}
        for label, doc_count in self._class_doc_counts.items():
            token_counts = self._class_token_counts[label]
            total_tokens = sum(token_counts.values())
            score = math.log(doc_count / self._total_docs)
            for token in tokens:
                score += math.log(
                    (token_counts.get(token, 0) + 1) / (total_tokens + vocab))
            log_scores[label] = score
        best = max(log_scores, key=lambda l: log_scores[l])
        confidence = _softmax_confidence(log_scores, best)
        return Prediction(label=best, confidence=confidence, log_scores=log_scores)


def _softmax_confidence(log_scores: Mapping[str, float], winner: str) -> float:
    """Posterior of the winning class, computed stably in log space."""
    peak = max(log_scores.values())
    total = sum(math.exp(s - peak) for s in log_scores.values())
    return math.exp(log_scores[winner] - peak) / total


class RelevanceClassifier:
    """Binary relevant/irrelevant classifier seeded from the threat lexicon.

    Bootstrapping: the built-in training set pairs threat-lexicon sentences
    (relevant) with benign news-style sentences (irrelevant); callers add
    their own labelled samples on top (``train``).
    """

    RELEVANT = "relevant"
    IRRELEVANT = "irrelevant"

    def __init__(self, seed_training: bool = True) -> None:
        self._model = NaiveBayesClassifier()
        if seed_training:
            self._model.train_many(_seed_samples())

    def train(self, text: str, relevant: bool) -> None:
        """Add one labelled document to the model."""
        self._model.train(text, self.RELEVANT if relevant else self.IRRELEVANT)

    def predict(self, text: str) -> Prediction:
        """Classify a document; returns label + confidence."""
        return self._model.predict(text)

    def is_relevant(self, text: str, threshold: float = 0.5) -> bool:
        """Whether text is relevant above a confidence threshold."""
        prediction = self.predict(text)
        if prediction.label == self.RELEVANT:
            return prediction.confidence >= threshold
        return False


def _seed_samples() -> List[Tuple[str, str]]:
    from .lexicon import THREAT_LEXICON
    relevant: List[Tuple[str, str]] = []
    for _category, per_language in THREAT_LEXICON.items():
        for keywords in per_language.values():
            for keyword in keywords:
                # Short documents keep the keyword tokens dominant in the
                # class-conditional distribution.
                relevant.append((keyword, RelevanceClassifier.RELEVANT))
                relevant.append((f"{keyword} detected", RelevanceClassifier.RELEVANT))
    for phrase in ("security advisory", "patch released for critical flaw",
                   "attackers exploited unpatched server", "incident response",
                   "compromise of production systems reported",
                   "critical vulnerability allows remote attackers to execute code"):
        relevant.append((phrase, RelevanceClassifier.RELEVANT))
    irrelevant_sentences = [
        "quarterly earnings beat analyst expectations for the retail sector",
        "the conference keynote covered cloud migration best practices",
        "new office opening celebrates company anniversary with partners",
        "team wins championship after dramatic overtime finish",
        "weather forecast predicts sunny skies for the holiday weekend",
        "product launch introduces faster wireless charging accessories",
        "university announces scholarship program for graduate students",
        "travel guide highlights coastal towns for summer vacations",
        "recipe column features seasonal vegetables and light sauces",
        "transit authority adds late night service on weekends",
        "library extends opening hours during exam season",
        "startup raises funding round to expand logistics network",
        # Benign corporate/tech phrasing that shares surface vocabulary with
        # threat reports ("data", "remote", "network", "services") — without
        # these the classifier over-fires on ordinary business news.
        "vendor announces partnership to expand regional data centers",
        "industry survey shows growth in remote collaboration tools",
        "annual developer conference opens registration for workshops",
        "subscription revenue growth highlighted in quarterly report",
        "new campus network upgrade improves wifi for students",
        "company services expand to three more cities this quarter",
        "remote work policy extended for another year",
        "open data portal publishes city transport statistics",
    ]
    irrelevant = [(s, RelevanceClassifier.IRRELEVANT) for s in irrelevant_sentences]
    # Repeat the irrelevant pool so both classes see a comparable number of
    # documents; otherwise the smaller class's smoothed unseen-token
    # probability dominates on out-of-vocabulary input.
    scale = max(1, len(relevant) // len(irrelevant))
    return relevant + irrelevant * scale
