"""Entity extraction from OSINT text.

§II-A: "In addition to the type of threat, other information from the OSINT
sources such as location and entities involved could also be extracted".

Two extractor families:

- :func:`extract_iocs` pulls technical indicators (IPs, domains, URLs,
  file hashes, CVE ids, email addresses) with defanging support
  (``hxxp://``, ``1.2.3[.]4``);
- :class:`GazetteerExtractor` finds locations/organizations from a
  configurable gazetteer (a tiny built-in one covers the examples).
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

# Common TLDs for conservative domain matching (avoids "e.g" style hits).
_TLDS = (
    "com|net|org|info|biz|io|co|ru|cn|de|fr|uk|es|pt|it|nl|eu|us|edu|gov|mil|"
    "onion|xyz|top|site|online|club|example"
)

_DEFANG_REPLACEMENTS = (
    ("hxxp://", "http://"),
    ("hxxps://", "https://"),
    ("[.]", "."),
    ("(.)", "."),
    ("[dot]", "."),
    ("[@]", "@"),
    ("[at]", "@"),
)

_IPV4_RE = re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b")
_URL_RE = re.compile(r"\bhttps?://[^\s'\"<>\)\]]+", re.IGNORECASE)
_DOMAIN_RE = re.compile(
    r"\b(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+(?:" + _TLDS + r")\b",
    re.IGNORECASE,
)
_EMAIL_RE = re.compile(r"\b[a-z0-9._%+-]+@[a-z0-9.-]+\.[a-z]{2,}\b", re.IGNORECASE)
_MD5_RE = re.compile(r"\b[a-f0-9]{32}\b", re.IGNORECASE)
_SHA1_RE = re.compile(r"\b[a-f0-9]{40}\b", re.IGNORECASE)
_SHA256_RE = re.compile(r"\b[a-f0-9]{64}\b", re.IGNORECASE)
_CVE_RE = re.compile(r"\bCVE-\d{4}-\d{4,}\b", re.IGNORECASE)


@dataclass(frozen=True)
class ExtractedEntities:
    """The typed result of :func:`extract_iocs`."""

    ipv4: Tuple[str, ...] = ()
    domains: Tuple[str, ...] = ()
    urls: Tuple[str, ...] = ()
    emails: Tuple[str, ...] = ()
    md5: Tuple[str, ...] = ()
    sha1: Tuple[str, ...] = ()
    sha256: Tuple[str, ...] = ()
    cves: Tuple[str, ...] = ()

    def is_empty(self) -> bool:
        """Whether nothing was extracted."""
        return not any((self.ipv4, self.domains, self.urls, self.emails,
                        self.md5, self.sha1, self.sha256, self.cves))

    def as_dict(self) -> Dict[str, Tuple[str, ...]]:
        """The extracted entities keyed by kind."""
        return {
            "ipv4": self.ipv4, "domains": self.domains, "urls": self.urls,
            "emails": self.emails, "md5": self.md5, "sha1": self.sha1,
            "sha256": self.sha256, "cves": self.cves,
        }

    def count(self) -> int:
        """Total number of extracted entities."""
        return sum(len(v) for v in self.as_dict().values())


def refang(text: str) -> str:
    """Undo common indicator defanging so the regexes can match."""
    lowered_pairs = _DEFANG_REPLACEMENTS
    for needle, replacement in lowered_pairs:
        text = re.sub(re.escape(needle), replacement, text, flags=re.IGNORECASE)
    return text


def _valid_ipv4(candidate: str) -> bool:
    try:
        ipaddress.IPv4Address(candidate)
        return True
    except ValueError:
        return False


def _dedupe(values: Iterable[str]) -> Tuple[str, ...]:
    seen: Set[str] = set()
    out: List[str] = []
    for value in values:
        key = value.lower()
        if key not in seen:
            seen.add(key)
            out.append(value)
    return tuple(out)


def extract_iocs(text: str) -> ExtractedEntities:
    """Extract technical indicators from (possibly defanged) free text."""
    cleaned = refang(text)

    urls = _dedupe(_URL_RE.findall(cleaned))
    emails = _dedupe(_EMAIL_RE.findall(cleaned))
    # Hashes: longest first so a sha256 is not also reported as two md5s.
    sha256 = _dedupe(_SHA256_RE.findall(cleaned))
    remainder = _SHA256_RE.sub(" ", cleaned)
    sha1 = _dedupe(_SHA1_RE.findall(remainder))
    remainder = _SHA1_RE.sub(" ", remainder)
    md5 = _dedupe(_MD5_RE.findall(remainder))

    ipv4 = _dedupe(c for c in _IPV4_RE.findall(cleaned) if _valid_ipv4(c))

    # Domains: drop ones that only appear inside a URL or an email address.
    inside = " ".join(urls) + " " + " ".join(emails)
    domains = _dedupe(
        d for d in _DOMAIN_RE.findall(cleaned)
        if d.lower() not in inside.lower() and not _valid_ipv4(d)
    )
    cves = _dedupe(c.upper() for c in _CVE_RE.findall(cleaned))
    return ExtractedEntities(
        ipv4=ipv4, domains=domains, urls=urls, emails=emails,
        md5=tuple(h.lower() for h in md5), sha1=tuple(h.lower() for h in sha1),
        sha256=tuple(h.lower() for h in sha256), cves=cves,
    )


#: Minimal built-in gazetteer: name -> entity kind.
DEFAULT_GAZETTEER: Mapping[str, str] = {
    "spain": "location", "portugal": "location", "france": "location",
    "germany": "location", "united states": "location", "lisbon": "location",
    "madrid": "location", "barcelona": "location", "europe": "location",
    "ukraine": "location", "russia": "location", "china": "location",
    "italy": "location", "united kingdom": "location",
    "netherlands": "location", "poland": "location", "japan": "location",
    "india": "location", "north korea": "location", "iran": "location",
    "canada": "location", "mexico": "location", "brazil": "location",
    "argentina": "location", "nigeria": "location",
    "south africa": "location", "egypt": "location", "australia": "location",
    "microsoft": "organization", "apache": "organization",
    "atos": "organization", "mitre": "organization", "oasis": "organization",
    "anssi": "organization", "enisa": "organization", "europol": "organization",
    "apt28": "threat-actor", "apt29": "threat-actor", "lazarus": "threat-actor",
    "fin7": "threat-actor", "carbanak": "threat-actor",
}


class GazetteerExtractor:
    """Finds known named entities (locations, orgs, actors) in text."""

    def __init__(self, gazetteer: Optional[Mapping[str, str]] = None) -> None:
        self._gazetteer = dict(DEFAULT_GAZETTEER if gazetteer is None else gazetteer)
        self._ordered = sorted(self._gazetteer, key=len, reverse=True)

    def add(self, name: str, kind: str) -> None:
        """Add one entry."""
        self._gazetteer[name.lower()] = kind
        self._ordered = sorted(self._gazetteer, key=len, reverse=True)

    def extract(self, text: str) -> Dict[str, List[str]]:
        """Return kind -> [matched names] (deduplicated, lowercase)."""
        lowered = text.lower()
        found: Dict[str, List[str]] = {}
        for name in self._ordered:
            index = lowered.find(name)
            while index != -1:
                end = index + len(name)
                before_ok = index == 0 or not lowered[index - 1].isalnum()
                after_ok = end >= len(lowered) or not lowered[end].isalnum()
                if before_ok and after_ok:
                    kind = self._gazetteer[name]
                    bucket = found.setdefault(kind, [])
                    if name not in bucket:
                        bucket.append(name)
                    break
                index = lowered.find(name, index + 1)
        return found
