"""NLP substrate: threat lexicon, relevance classification, entity extraction."""

from .classifier import NaiveBayesClassifier, Prediction, RelevanceClassifier, tokenize
from .extract import (
    DEFAULT_GAZETTEER,
    ExtractedEntities,
    GazetteerExtractor,
    extract_iocs,
    refang,
)
from .lexicon import (
    SUPPORTED_LANGUAGES,
    THREAT_CATEGORIES,
    THREAT_LEXICON,
    ThreatTagger,
    all_keywords,
    keywords_for,
)

__all__ = [
    "NaiveBayesClassifier",
    "Prediction",
    "RelevanceClassifier",
    "tokenize",
    "DEFAULT_GAZETTEER",
    "ExtractedEntities",
    "GazetteerExtractor",
    "extract_iocs",
    "refang",
    "SUPPORTED_LANGUAGES",
    "THREAT_CATEGORIES",
    "THREAT_LEXICON",
    "ThreatTagger",
    "all_keywords",
    "keywords_for",
]
