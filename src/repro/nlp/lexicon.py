"""Multi-language threat keyword lexicon.

§II-A: "the use of natural language processing techniques to identify threats
from the use of keywords that typically indicate a threat in major languages;
such as ddos, security breach, leak and more".  Keywords are grouped by
threat category so the tagger can both flag relevance and name the threat
type.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

#: category -> language -> keywords (lowercase; multi-word phrases allowed).
THREAT_LEXICON: Mapping[str, Mapping[str, Tuple[str, ...]]] = {
    "ddos": {
        "en": ("ddos", "denial of service", "botnet", "amplification attack",
               "flood attack", "service outage"),
        "es": ("denegación de servicio", "ataque de denegación", "botnet"),
        "fr": ("déni de service", "attaque par déni", "botnet"),
        "pt": ("negação de serviço", "ataque de negação", "botnet"),
        "de": ("dienstverweigerung", "überlastungsangriff", "botnetz"),
    },
    "data-breach": {
        "en": ("security breach", "data breach", "leak", "leaked", "exfiltration",
               "stolen credentials", "dumped database", "exposed records"),
        "es": ("brecha de seguridad", "fuga de datos", "filtración",
               "credenciales robadas"),
        "fr": ("fuite de données", "violation de données", "vol de données"),
        "pt": ("violação de dados", "fuga de dados", "vazamento"),
        "de": ("datenleck", "datenpanne", "gestohlene zugangsdaten"),
    },
    "malware": {
        "en": ("malware", "ransomware", "trojan", "worm", "spyware", "keylogger",
               "rootkit", "backdoor", "dropper", "infostealer", "cryptominer"),
        "es": ("malware", "ransomware", "troyano", "gusano", "secuestro de datos"),
        "fr": ("logiciel malveillant", "rançongiciel", "cheval de troie", "ver"),
        "pt": ("malware", "ransomware", "cavalo de troia", "verme"),
        "de": ("schadsoftware", "erpressungstrojaner", "trojaner", "wurm"),
    },
    "phishing": {
        "en": ("phishing", "spear phishing", "credential harvesting",
               "fake login", "spoofed email", "business email compromise"),
        "es": ("suplantación de identidad", "correo fraudulento", "phishing"),
        "fr": ("hameçonnage", "courriel frauduleux", "phishing"),
        "pt": ("phishing", "e-mail fraudulento", "roubo de credenciais"),
        "de": ("phishing", "gefälschte e-mail", "passwortdiebstahl"),
    },
    "vulnerability-exploitation": {
        "en": ("vulnerability", "exploit", "zero-day", "0day", "remote code execution",
               "rce", "privilege escalation", "arbitrary code", "proof of concept",
               "cve", "unpatched", "security flaw", "injection"),
        "es": ("vulnerabilidad", "ejecución remota de código", "escalada de privilegios",
               "día cero"),
        "fr": ("vulnérabilité", "exécution de code à distance", "faille de sécurité",
               "jour zéro"),
        "pt": ("vulnerabilidade", "execução remota de código", "falha de segurança",
               "dia zero"),
        "de": ("sicherheitslücke", "schwachstelle", "rechteausweitung",
               "codeausführung"),
    },
    "intrusion": {
        "en": ("unauthorized access", "intrusion", "compromised server", "hacked",
               "defaced", "lateral movement", "command and control", "c2 server",
               "brute force", "apt"),
        "es": ("acceso no autorizado", "intrusión", "servidor comprometido",
               "fuerza bruta"),
        "fr": ("accès non autorisé", "intrusion", "serveur compromis",
               "force brute"),
        "pt": ("acesso não autorizado", "intrusão", "servidor comprometido",
               "força bruta"),
        "de": ("unbefugter zugriff", "einbruch", "kompromittierter server",
               "brute-force"),
    },
}

SUPPORTED_LANGUAGES: Tuple[str, ...] = ("en", "es", "fr", "pt", "de")

THREAT_CATEGORIES: Tuple[str, ...] = tuple(THREAT_LEXICON.keys())


def keywords_for(category: str, languages: Iterable[str] = SUPPORTED_LANGUAGES) -> List[str]:
    """All keywords of a category across the requested languages."""
    per_language = THREAT_LEXICON.get(category)
    if per_language is None:
        raise KeyError(f"unknown threat category {category!r}")
    out: List[str] = []
    for language in languages:
        out.extend(per_language.get(language, ()))
    return out


def all_keywords(languages: Iterable[str] = SUPPORTED_LANGUAGES) -> Dict[str, str]:
    """keyword -> category over the requested languages.

    Multi-category keywords resolve to the first category in declaration
    order (stable, so tagging is deterministic).
    """
    mapping: Dict[str, str] = {}
    for category in THREAT_CATEGORIES:
        for keyword in keywords_for(category, languages):
            mapping.setdefault(keyword, category)
    return mapping


class ThreatTagger:
    """Tags free text with threat categories by phrase matching.

    Longer phrases win over their substrings ("denial of service" beats
    "service") because matching scans phrases longest-first.
    """

    def __init__(self, languages: Iterable[str] = SUPPORTED_LANGUAGES) -> None:
        self._keyword_to_category = all_keywords(languages)
        self._ordered = sorted(self._keyword_to_category, key=len, reverse=True)

    def tag(self, text: str) -> Dict[str, List[str]]:
        """Return category -> matched keywords for ``text``."""
        lowered = text.lower()
        consumed: Set[Tuple[int, int]] = set()
        hits: Dict[str, List[str]] = {}
        for keyword in self._ordered:
            start = 0
            while True:
                index = lowered.find(keyword, start)
                if index == -1:
                    break
                span = (index, index + len(keyword))
                start = index + 1
                if any(s < span[1] and span[0] < e for s, e in consumed):
                    continue
                if not _word_bounded(lowered, span):
                    continue
                consumed.add(span)
                category = self._keyword_to_category[keyword]
                hits.setdefault(category, []).append(keyword)
        return hits

    def categories(self, text: str) -> List[str]:
        """Matched categories ordered by number of keyword hits (desc)."""
        hits = self.tag(text)
        return sorted(hits, key=lambda c: (-len(hits[c]), c))

    def is_threat_related(self, text: str) -> bool:
        """Whether any threat keyword matches the text."""
        return bool(self.tag(text))


def _word_bounded(text: str, span: Tuple[int, int]) -> bool:
    """True when the span does not cut a word in half."""
    start, end = span
    before_ok = start == 0 or not text[start - 1].isalnum()
    after_ok = end >= len(text) or not text[end].isalnum()
    return before_ok and after_ok
