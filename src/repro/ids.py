"""Identifier helpers.

Two id styles coexist in the platform:

- *random-looking* ids for freshly created objects (STIX ids, MISP event
  uuids).  These are drawn from a seeded RNG so runs are reproducible.
- *content-derived* ids (uuid5) for normalized events, so the deduplicator
  can recognize the same security event arriving from two different feeds.
"""

from __future__ import annotations

import random
import uuid
from typing import Optional

#: Namespace for content-derived uuids (uuid5).  Fixed so that the same
#: canonical content always maps to the same id across processes.
CONTENT_NAMESPACE = uuid.UUID("6ba7b810-9dad-11d1-80b4-00c04fd430c8")


class IdGenerator:
    """Deterministic uuid4-shaped id factory backed by a seeded RNG."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def uuid(self) -> str:
        """Return a new RFC-4122 version-4 uuid string."""
        return str(uuid.UUID(int=self._rng.getrandbits(128), version=4))

    def stix_id(self, object_type: str) -> str:
        """Return a STIX 2.0 identifier, e.g. ``indicator--<uuid4>``."""
        return f"{object_type}--{self.uuid()}"


def content_uuid(*parts: str) -> str:
    """Derive a stable uuid from canonical content parts.

    The parts are joined with an unambiguous separator so that
    ``("ab", "c")`` and ``("a", "bc")`` never collide.
    """
    blob = "\x1f".join(parts)
    return str(uuid.uuid5(CONTENT_NAMESPACE, blob))


def content_stix_id(object_type: str, *parts: str) -> str:
    """Derive a stable STIX identifier from canonical content parts."""
    return f"{object_type}--{content_uuid(object_type, *parts)}"
