"""Command-line interface for the Context-Aware OSINT Platform.

Subcommands::

    caop run        run N platform cycles (optionally persisting the MISP
                    store to a SQLite file) and print the dashboard
    caop deadletter run cycles under injected faults and inspect/replay the
                    dead-letter quarantine
    caop rce-demo   the paper's §IV use case (Table V + Figures 3/4)
    caop fanout     snapshot+delta fan-out demo (many subscribers, one
                    render per room, laggards shed into snapshot resyncs)
    caop show       render views over a persisted MISP store
    caop trace      print an IoC's (cross-org) lineage tree from store(s)
    caop slo        run cycles and print SLO burn-rate status
    caop federation drive an N-org federation through a partition/heal
                    scenario and print the convergence verdict
    caop cvss       score a CVSS v3 vector
    caop pattern    validate a STIX pattern

``python -m repro.cli --help`` works without the console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ReproError


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import ContextAwareOSINTPlatform, PlatformConfig
    from .dashboard import render_topology

    config = PlatformConfig(
        seed=args.seed,
        feed_entries=args.entries,
        drop_irrelevant_text=args.drop_irrelevant,
        fetch_workers=args.fetch_workers,
        enrich_workers=args.enrich_workers,
        share_workers=args.share_workers,
        # Built into the wiring (not rewired post-build) so the sharing
        # ledger and the provenance recorder land in the same file.
        store_path=args.store,
        store_shards=args.store_shards,
        compaction_every_cycles=args.compact_every,
        fanout_subscribers=args.subscribers,
    )
    if args.feeds:
        platform = ContextAwareOSINTPlatform.build_from_feed_config(
            args.feeds, config=config)
    else:
        platform = ContextAwareOSINTPlatform.build_default(config)
    if args.share_entities:
        from .sharing import ExternalEntity, TaxiiServer
        server = TaxiiServer(clock=platform.clock)
        for index in range(args.share_entities):
            name = f"partner-{index}"
            server.create_collection(name, f"Partner {index} indicators")
            platform.gateway.register(ExternalEntity(
                name=name, transport="taxii", taxii_server=server,
                taxii_collection=name))
    for cycle in range(1, args.cycles + 1):
        report = platform.run_cycle()
        shares = (f", {report.shares_sent} shares"
                  if args.share_entities else "")
        print(f"cycle {cycle}: {report.collection.ciocs_created} cIoCs, "
              f"{report.eiocs_created} eIoCs "
              f"(mean TS {report.mean_score:.2f}), "
              f"{report.riocs_created} rIoCs, {report.new_alarms} alarms"
              + shares
              + (f" [degraded: {', '.join(sorted(report.stage_errors))}]"
                 if report.degraded else ""))
    health = platform.health()
    degraded_cycles = sum(1 for r in platform.history if r.degraded)
    print(f"platform health: {health.overall()} "
          f"({degraded_cycles} degraded cycle(s))")
    if args.subscribers:
        deltas = sum(r.fanout_deltas for r in platform.history)
        current = sum(1 for c in platform.fanout_clients
                      if c.version == platform.dashboard.fanout.room(
                          "riocs").version)
        print(f"fan-out: {args.subscribers} subscribers, {deltas} room "
              f"deltas, {current} clients current")
    print()
    print(render_topology(platform.dashboard.state))
    if args.store:
        # Checkpoint rollup cursors so a reopened platform resumes its
        # materialized views without rescanning the store.
        platform.checkpoint()
        print(f"\nMISP store persisted to {args.store}")
    return 0


def _cmd_fanout(args: argparse.Namespace) -> int:
    """Snapshot+delta fan-out demo: many subscribers, one render per room."""
    from .core import ContextAwareOSINTPlatform, PlatformConfig
    from .dashboard import FanoutClient, canonical_json, render_fanout

    config = PlatformConfig(seed=args.seed, feed_entries=args.entries)
    platform = ContextAwareOSINTPlatform.build_default(config)
    hub = platform.dashboard.fanout
    clients: List[FanoutClient] = []
    laggards: List[FanoutClient] = []
    for index in range(args.subscribers):
        lagging = bool(args.laggard_every) \
            and (index + 1) % args.laggard_every == 0
        client = FanoutClient(hub, "riocs",
                              max_pending=2 if lagging else None)
        (laggards if lagging else clients).append(client)
    print(f"subscribers: {len(clients)} draining, {len(laggards)} lagging")
    for cycle in range(1, args.cycles + 1):
        report = platform.run_cycle()
        for client in clients:
            client.pump()
        print(f"cycle {cycle}: {report.riocs_created} rIoCs -> "
              f"{report.fanout_deltas} room deltas, "
              f"shed={report.fanout_shed} msgs, "
              f"resyncs={report.fanout_resyncs}")
    # Let the laggards finally drain; gaps degrade them to snapshot
    # resyncs which the extra flush delivers.
    for client in laggards:
        client.pump()
    flush = hub.flush()
    for client in clients + laggards:
        client.pump()
    print()
    print(render_fanout(hub, flush))
    expected = canonical_json(hub.room("riocs").state())
    converged = sum(1 for c in clients + laggards
                    if c.state_text() == expected)
    print(f"converged: {converged}/{args.subscribers} subscribers "
          f"byte-identical to snapshot(v{hub.room('riocs').version})")
    return 0 if converged == args.subscribers else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .core import ContextAwareOSINTPlatform, PlatformConfig

    config = PlatformConfig(seed=args.seed, feed_entries=args.entries,
                            fetch_workers=args.fetch_workers,
                            enrich_workers=args.enrich_workers,
                            share_workers=args.share_workers)
    platform = ContextAwareOSINTPlatform.build_default(config)
    for cycle in range(1, args.cycles + 1):
        report = platform.run_cycle()
        stages = {name: seconds for name, seconds in report.timings.items()
                  if name != "cycle"}
        breakdown = "  ".join(
            f"{name}={seconds * 1000:.1f}ms"
            for name, seconds in sorted(stages.items(),
                                        key=lambda item: -item[1])[:6])
        print(f"cycle {cycle}: {report.timings.get('cycle', 0.0) * 1000:.1f}ms "
              f"[{breakdown}]")
    print()
    if args.format in ("prometheus", "both"):
        print("# ---- Prometheus text exposition " + "-" * 38)
        print(platform.dashboard.render_metrics(), end="")
    if args.format in ("json", "both"):
        print("# ---- JSON snapshot " + "-" * 51)
        print(platform.dashboard.render_metrics(accept="application/json"))
    return 0


def _cmd_init_feeds(args: argparse.Namespace) -> int:
    import json

    from .feeds import default_feed_config

    with open(args.path, "w") as handle:
        json.dump(default_feed_config(), handle, indent=2)
    print(f"feed configuration written to {args.path}")
    return 0


def _cmd_deadletter(args: argparse.Namespace) -> int:
    from .core import ContextAwareOSINTPlatform, PlatformConfig
    from .resilience import FaultInjector, FaultPlan, FaultRule

    rules = []
    if args.failure_rate > 0:
        rules.append(FaultRule(component="transport", rate=args.failure_rate,
                               reason="transport fault (cli)"))
    if args.parse_fault:
        rules.append(FaultRule(component="parse", key=args.parse_fault,
                               rate=1.0, reason="parse fault (cli)"))
    injector = (FaultInjector(FaultPlan(rules=tuple(rules), seed=args.seed))
                if rules else None)
    config = PlatformConfig(seed=args.seed, feed_entries=args.entries,
                            fault_injector=injector)
    platform = ContextAwareOSINTPlatform.build_default(config)
    reports = platform.run(args.cycles)
    degraded = sum(1 for report in reports if report.degraded)
    print(f"{args.cycles} cycle(s) run, {degraded} degraded")
    entries = platform.deadletters.entries()
    if not entries:
        print("dead-letter queue is empty")
    else:
        print(f"dead-letter queue: {len(entries)} entries")
        print(f"  {'kind':<10} {'source':<24} {'attempts':>8}  reason")
        for letter in entries:
            print(f"  {letter.kind:<10} {letter.source:<24} "
                  f"{letter.attempts:>8}  {letter.reason[:60]}")
    if args.save:
        platform.deadletters.save(args.save)
        print(f"dead-letter queue written to {args.save}")
    if args.replay:
        if injector is not None:
            injector.clear()
        outcome = platform.replay_deadletters()
        print(f"replay: {outcome.attempted} attempted, "
              f"{outcome.documents_replayed} document(s) and "
              f"{outcome.events_replayed} event(s) re-driven, "
              f"{outcome.ciocs_created} cIoCs, {outcome.eiocs_created} eIoCs, "
              f"{outcome.requeued} re-queued")
        print(f"queue depth after replay: {len(platform.deadletters)}")
    return 0


def _cmd_rce_demo(_args: argparse.Namespace) -> int:
    from .dashboard import render_issue_details, render_node_details
    from .workloads import RCE_PAPER_SCORE, rce_use_case

    scenario = rce_use_case()
    result = scenario.heuristics.process_pending()[0]
    score = result.score
    print("Table V reproduction (CVE-2017-9805 vs the Table III inventory)")
    for feature in score.features:
        xi = "-" if feature.value is None else feature.value
        print(f"  {feature.feature:<22} Xi={xi!s:<2} Pi={feature.weight:.4f} "
              f"({feature.attribute_label})")
    print(f"  threat score = {score.score:.4f} (paper: {RCE_PAPER_SCORE})")
    rioc = scenario.rioc_generator.generate(result.eioc)
    if rioc is not None:
        scenario.dashboard.push_rioc(rioc)
        print()
        print(render_node_details(scenario.dashboard.state, rioc.nodes[0]))
        print()
        print(render_issue_details(rioc))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from .dashboard.geo import GeoSummaryView
    from .dashboard.views import (
        CorrelationGraphView,
        EventJourneyView,
        KeywordSummaryView,
    )
    from .misp import MispStore

    store = MispStore(args.store)
    print(f"store: {args.store}")
    print(f"  events:     {store.event_count()}")
    print(f"  attributes: {store.attribute_count()}")
    print()
    print(CorrelationGraphView(store).render())
    print()
    print(KeywordSummaryView(store).render())
    if store.provenance_count():
        print()
        print(EventJourneyView(store).render())
    geo = GeoSummaryView()
    if geo.ingest_store(store):
        print()
        print(geo.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import os

    from .misp import MispStore
    from .obs import render_lineage, stitch_lineage

    if args.latest:
        store_paths = list(args.targets)
    else:
        if len(args.targets) < 2:
            print("error: need an event uuid followed by at least one "
                  "store path (or --latest with store paths only)",
                  file=sys.stderr)
            return 2
        store_paths = list(args.targets[1:])
    stores = [(os.path.basename(path), MispStore(path))
              for path in store_paths]
    if args.latest:
        event_uuid = stores[0][1].latest_traced_event()
        if event_uuid is None:
            print(f"error: no provenance recorded in {store_paths[0]}",
                  file=sys.stderr)
            return 1
    else:
        event_uuid = args.targets[0]
    tree = stitch_lineage(stores, event_uuid)
    if args.json:
        print(json.dumps(tree, indent=2, sort_keys=True))
    else:
        print(render_lineage(tree))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from .core import ContextAwareOSINTPlatform, PlatformConfig
    from .obs import SloEngine, SloRule

    config = PlatformConfig(seed=args.seed, feed_entries=args.entries)
    platform = ContextAwareOSINTPlatform.build_default(config)
    if args.rules:
        import json

        with open(args.rules) as handle:
            rules = [SloRule.from_dict(entry) for entry in json.load(handle)]
        platform.slo = SloEngine(rules=rules, metrics=platform.metrics)
    for _ in range(args.cycles):
        platform.run_cycle()
    print(f"{args.cycles} cycle(s) observed")
    print(f"  {'rule':<18} {'severity':<9} {'fast':>8} {'slow':>8} "
          f"{'compliance':>11}")
    for status in platform.slo.last_statuses():
        print(f"  {status.rule.name:<18} {status.severity:<9} "
              f"{status.fast_burn_rate:>7.2f}x {status.slow_burn_rate:>7.2f}x "
              f"{status.compliance:>10.0%}")
    alerts = platform.slo.alerts()
    if alerts:
        print()
        for status in alerts:
            print(f"  ALERT [{status.severity}] {status.rule.name}: "
                  f"{status.detail}")
    else:
        print("  no SLO alerts")
    return 0


def _cmd_sight(args: argparse.Namespace) -> int:
    from .core import HeuristicComponent, SightingProcessor
    from .infra import paper_inventory
    from .misp import MispInstance, MispStore

    store = MispStore(args.store)
    misp = MispInstance(store=store)
    heuristics = HeuristicComponent(misp, inventory=paper_inventory())
    processor = SightingProcessor(misp, heuristics)
    try:
        outcome = processor.report(args.event_uuid, args.value, args.node)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    print(f"sighting of {args.value!r} on {args.node} recorded")
    old = f"{outcome.old_score:.4f}" if outcome.old_score is not None else "-"
    print(f"threat score: {old} -> {outcome.new_score:.4f} "
          f"({outcome.delta:+.4f})")
    return 0


def _cmd_federation(args: argparse.Namespace) -> int:
    import datetime

    from .clock import PAPER_NOW, SimulatedClock
    from .federation import (
        Federation, SimulatedNetworkBackbone, hub_and_spoke, mesh)
    from .misp import Distribution, MispAttribute, MispEvent
    from .resilience import FaultInjector
    from .sharing import mark_tlp

    if args.orgs < 3:
        print("error: a federation needs at least 3 orgs", file=sys.stderr)
        return 1
    orgs = [f"org-{i:02d}" for i in range(args.orgs)]
    split = max(1, min(args.orgs - 1, args.orgs * 3 // 5))

    def run(fault: bool) -> "Federation":
        injector = FaultInjector()
        topology = (mesh(orgs) if args.topology == "mesh"
                    else hub_and_spoke(orgs[0], orgs[1:]))
        federation = Federation(
            topology, backbone=SimulatedNetworkBackbone(injector),
            clock=SimulatedClock(PAPER_NOW))
        node = federation.node(orgs[0])
        for index in range(args.events):
            event = MispEvent(
                info=f"intel {index}",
                uuid=f"11111111-1111-4111-8111-{index:012d}",
                distribution=Distribution.ALL_COMMUNITIES,
                timestamp=PAPER_NOW)
            event.add_attribute(MispAttribute(
                type="ip-src", value=f"203.0.113.{index + 1}",
                uuid=f"22222222-2222-4222-8222-{index:012d}",
                timestamp=PAPER_NOW))
            mark_tlp(event, "green")
            node.misp.add_event(event)
        node.heuristics.process_pending()
        federation.run_round()
        if fault:
            injector.partition(orgs[:split], orgs[split:])
        federation.node(orgs[-2]).observe(
            "11111111-1111-4111-8111-000000000000", "203.0.113.1",
            "edge-fw",
            observed_at=PAPER_NOW + datetime.timedelta(seconds=60))
        federation.run(args.rounds)
        if fault:
            quarantined = sum(
                len(federation.node(org).deadletters) for org in orgs)
            print(f"  partition {orgs[:split]} | {orgs[split:]} held for "
                  f"{args.rounds} round(s); {injector.injected_total()} "
                  f"transmit(s) dropped, {quarantined} share(s) quarantined")
            injector.heal()
            replayed = federation.replay_deadletters()
            print(f"  healed; {sum(replayed.values())} quarantined "
                  f"share(s) replayed")
        federation.run(args.rounds)
        repairs = federation.reconcile()
        federation.run_round()
        repaired = sum(r.get("repaired", 0) for r in repairs.values())
        if fault:
            print(f"  anti-entropy pass repaired {repaired} divergence(s)")
        return federation

    print(f"fault-free baseline ({args.topology}, {args.orgs} orgs, "
          f"{args.events} event(s)):")
    baseline = run(False)
    print(f"  converged: {baseline.converged()}")
    print("partitioned run:")
    faulted = run(True)
    base_prints, fault_prints = baseline.fingerprints(), \
        faulted.fingerprints()
    matching = sum(1 for org in orgs if base_prints[org] == fault_prints[org])
    rescores = len(faulted.node(orgs[0]).rescores)
    base_kib = sum(baseline.bytes_by_org().values()) / 1024
    fault_kib = sum(faulted.bytes_by_org().values()) / 1024
    print(f"  converged: {faulted.converged()}")
    print(f"  store fingerprints matching baseline: "
          f"{matching}/{len(orgs)}")
    print(f"  sighting re-scored the origin eIoC: "
          f"{'yes' if rescores else 'NO'}")
    print(f"  transport: baseline {base_kib:.1f} KiB, "
          f"faulted {fault_kib:.1f} KiB")
    ok = matching == len(orgs) and faulted.converged() and rescores
    print("federation converged byte-identically onto the baseline"
          if ok else "federation FAILED to converge onto the baseline")
    return 0 if ok else 1


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import threat_score_of
    from .misp import MispStore

    store = MispStore(args.store)
    hits = store.search_value(args.value)
    if not hits:
        print(f"no stored event carries the value {args.value!r}")
        return 1
    print(f"{args.value!r} appears in {len(hits)} event(s):")
    seen = set()
    for event_uuid, _attribute_uuid in hits:
        if event_uuid in seen:
            continue
        seen.add(event_uuid)
        event = store.get_event(event_uuid)
        if event is None:
            continue
        score = threat_score_of(event)
        rendered = f"{score:.4f}" if score is not None else "unscored"
        print(f"  {event_uuid}  TS={rendered}  {event.info[:60]}")
    return 0


def _cmd_purge(args: argparse.Namespace) -> int:
    from .core import ScoreDecayEngine
    from .misp import MispStore

    store = MispStore(args.store)
    engine = ScoreDecayEngine()
    live, expired = engine.sweep(store)
    print(f"store: {args.store} — {len(live)} live scored events, "
          f"{len(expired)} expired")
    if args.apply:
        removed = engine.purge_expired(store)
        print(f"purged {removed} expired events")
    elif expired:
        print("re-run with --apply to delete them")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import datetime as dt

    from .core import IntelReportBuilder
    from .misp import MispStore

    store = MispStore(args.store)
    builder = IntelReportBuilder(store)
    report = builder.build(period=dt.timedelta(days=args.days), top=args.top)
    print(report.to_markdown())
    if args.stix:
        stix_report, objects = builder.to_stix_report(report)
        from .stix import Bundle
        bundle = Bundle([stix_report] + objects)
        with open(args.stix, "w") as handle:
            handle.write(bundle.to_json(indent=1))
        print(f"\nSTIX report bundle written to {args.stix}")
    return 0


def _cmd_cvss(args: argparse.Namespace) -> int:
    from .cvss import CvssVector

    vector = CvssVector.parse(args.vector)
    print(f"vector:        {vector.to_string()}")
    print(f"base score:    {vector.base_score()} ({vector.severity()})")
    print(f"temporal:      {vector.temporal_score()}")
    print(f"environmental: {vector.environmental_score()}")
    return 0


def _cmd_pattern(args: argparse.Namespace) -> int:
    from .stix.pattern import CompiledPattern

    compiled = CompiledPattern(args.pattern)
    print("pattern is valid")
    for comparison in compiled.comparisons():
        print(f"  {comparison}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the caop CLI."""
    parser = argparse.ArgumentParser(
        prog="caop",
        description="Context-Aware OSINT Platform (DSN 2019 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"caop {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run platform cycles")
    run.add_argument("--cycles", type=int, default=3)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--entries", type=int, default=60,
                     help="entries per synthetic feed")
    run.add_argument("--drop-irrelevant", action="store_true",
                     help="filter irrelevant news via the NLP classifier")
    run.add_argument("--fetch-workers", type=int, default=4,
                     help="worker threads for the feed-fetch stage")
    run.add_argument("--share-workers", type=int, default=4,
                     help="worker threads for the sharing fan-out")
    run.add_argument("--share-entities", type=int, default=0,
                     help="register N in-process TAXII partner entities "
                          "and share eIoCs to them each cycle")
    run.add_argument("--enrich-workers", type=int, default=4,
                     help="worker threads for the heuristic scoring stage")
    run.add_argument("--store", default=None,
                     help="persist the MISP store to this SQLite file")
    run.add_argument("--compact-every", type=int, default=25,
                     help="run the decay compaction full pass every N "
                          "cycles (<= 0 disables it)")
    run.add_argument("--store-shards", type=int, default=1,
                     help="hash-shard the MISP store across N SQLite files"
                          " (default 1 = single file)")
    run.add_argument("--feeds", default=None,
                     help="JSON feed-configuration file (see 'caop init-feeds')")
    run.add_argument("--subscribers", type=int, default=0,
                     help="attach N snapshot+delta fan-out subscribers to "
                          "the rIoC room and pump them each cycle")
    run.set_defaults(func=_cmd_run)

    fanout = subparsers.add_parser(
        "fanout", help="snapshot+delta fan-out protocol demo")
    fanout.add_argument("--cycles", type=int, default=3)
    fanout.add_argument("--seed", type=int, default=7)
    fanout.add_argument("--entries", type=int, default=60,
                        help="entries per synthetic feed")
    fanout.add_argument("--subscribers", type=int, default=1000,
                        help="fan-out subscribers on the rIoC room")
    fanout.add_argument("--laggard-every", type=int, default=0,
                        help="make every Nth subscriber a non-draining "
                             "laggard (0 = none) to exercise load-shedding")
    fanout.set_defaults(func=_cmd_fanout)

    metrics = subparsers.add_parser(
        "metrics",
        help="run simulated cycles and print the platform telemetry")
    metrics.add_argument("--cycles", type=int, default=3)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--entries", type=int, default=60,
                         help="entries per synthetic feed")
    metrics.add_argument("--fetch-workers", type=int, default=4,
                         help="worker threads for the feed-fetch stage")
    metrics.add_argument("--share-workers", type=int, default=4,
                         help="worker threads for the sharing fan-out")
    metrics.add_argument("--enrich-workers", type=int, default=4,
                         help="worker threads for the heuristic scoring stage")
    metrics.add_argument("--format", choices=("prometheus", "json", "both"),
                         default="both",
                         help="exposition format(s) to print")
    metrics.set_defaults(func=_cmd_metrics)

    init_feeds = subparsers.add_parser(
        "init-feeds", help="write a ready-to-edit feed configuration file")
    init_feeds.add_argument("path")
    init_feeds.set_defaults(func=_cmd_init_feeds)

    deadletter = subparsers.add_parser(
        "deadletter",
        help="run cycles under injected faults and inspect the quarantine")
    deadletter.add_argument("--cycles", type=int, default=3)
    deadletter.add_argument("--seed", type=int, default=7)
    deadletter.add_argument("--entries", type=int, default=60,
                            help="entries per synthetic feed")
    deadletter.add_argument("--failure-rate", type=float, default=0.3,
                            help="injected transport fault rate (0..1)")
    deadletter.add_argument("--parse-fault", default=None, metavar="FEED",
                            help="make this feed's documents fail parsing")
    deadletter.add_argument("--save", default=None,
                            help="write the queue to this JSON file")
    deadletter.add_argument("--replay", action="store_true",
                            help="clear the faults and replay the queue")
    deadletter.set_defaults(func=_cmd_deadletter)

    rce = subparsers.add_parser("rce-demo", help="the paper's §IV use case")
    rce.set_defaults(func=_cmd_rce_demo)

    show = subparsers.add_parser("show", help="inspect a persisted MISP store")
    show.add_argument("store", help="path to the SQLite store")
    show.set_defaults(func=_cmd_show)

    trace = subparsers.add_parser(
        "trace",
        help="print one IoC's lineage tree from persisted store(s)")
    trace.add_argument(
        "targets", nargs="+",
        help="event uuid followed by store path(s); with --latest, "
             "store path(s) only")
    trace.add_argument("--latest", action="store_true",
                       help="trace the most recently traced event of the "
                            "first store")
    trace.add_argument("--json", action="store_true",
                       help="print the stitched lineage as JSON")
    trace.set_defaults(func=_cmd_trace)

    slo = subparsers.add_parser(
        "slo", help="run cycles and print SLO burn-rate status")
    slo.add_argument("--cycles", type=int, default=8)
    slo.add_argument("--seed", type=int, default=7)
    slo.add_argument("--entries", type=int, default=60,
                     help="entries per synthetic feed")
    slo.add_argument("--rules", default=None,
                     help="JSON file with a list of SLO rule objects "
                          "(see docs/OBSERVABILITY.md)")
    slo.set_defaults(func=_cmd_slo)

    sight = subparsers.add_parser(
        "sight", help="record an infrastructure sighting and re-score an eIoC")
    sight.add_argument("store", help="path to the SQLite store")
    sight.add_argument("event_uuid")
    sight.add_argument("value", help="the sighted indicator value")
    sight.add_argument("node", help="the node it was sighted on")
    sight.set_defaults(func=_cmd_sight)

    federation = subparsers.add_parser(
        "federation",
        help="drive an N-org federation through a partition/heal scenario")
    federation.add_argument("--orgs", type=int, default=10,
                            help="federation size (default 10)")
    federation.add_argument("--topology", choices=("mesh", "hub"),
                            default="mesh")
    federation.add_argument("--events", type=int, default=3,
                            help="events seeded at the first org")
    federation.add_argument("--rounds", type=int, default=3,
                            help="rounds per phase (partitioned, recovery)")
    federation.set_defaults(func=_cmd_federation)

    match = subparsers.add_parser(
        "match", help="look an indicator value up in a persisted store")
    match.add_argument("store", help="path to the SQLite store")
    match.add_argument("value", help="the indicator value to look up")
    match.set_defaults(func=_cmd_match)

    purge = subparsers.add_parser(
        "purge", help="sweep a store for decay-expired eIoCs")
    purge.add_argument("store", help="path to the SQLite store")
    purge.add_argument("--apply", action="store_true",
                       help="actually delete expired events")
    purge.set_defaults(func=_cmd_purge)

    report = subparsers.add_parser(
        "report", help="build an intelligence report from a persisted store")
    report.add_argument("store", help="path to the SQLite store")
    report.add_argument("--days", type=int, default=7)
    report.add_argument("--top", type=int, default=10)
    report.add_argument("--stix", default=None,
                        help="also write a STIX report bundle to this path")
    report.set_defaults(func=_cmd_report)

    cvss = subparsers.add_parser("cvss", help="score a CVSS v3 vector")
    cvss.add_argument("vector")
    cvss.set_defaults(func=_cmd_cvss)

    pattern = subparsers.add_parser("pattern", help="validate a STIX pattern")
    pattern.add_argument("pattern")
    pattern.set_defaults(func=_cmd_pattern)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
