"""Per-IoC provenance: stable trace ids and typed lineage events.

The paper's sharing loop only pays off if an analyst at the *receiving*
organization can answer "where did this indicator come from and what
happened to it on the way here?".  This module gives every IoC a stable
**trace id** derived from its content uuid (:func:`trace_id_for`), so the
same cIoC carries the same trace id in every org's store, and records
typed **lineage events** (:data:`LINEAGE_KINDS`) at each pipeline seam:

- ``fetched`` / ``parsed`` / ``deduped-into`` — collector and dedup;
- ``enriched-by`` / ``scored`` — the heuristic component;
- ``reduced-into`` — rIoC generation;
- ``shared-to`` — the sharing gateway, per entity;
- ``synced-from`` — written into the *receiving* store when a MISP push
  carries trace context, with the org path accumulated hop by hop.

Rows are buffered in a :class:`ProvenanceRecorder` on the coordinating
thread (worker pools never write provenance directly — the same
determinism discipline as metrics and logs) and flushed once per cycle
into the :class:`~repro.misp.MispStore` ``provenance`` table with a single
``executemany``.  :func:`stitch_lineage` then reassembles the cross-org
journey of one event from any number of stores, and
:func:`render_lineage` prints it as the tree ``caop trace`` shows.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..ids import content_uuid

#: The typed lineage vocabulary, in rough pipeline order.
LINEAGE_KINDS: Tuple[str, ...] = (
    "fetched",
    "parsed",
    "deduped-into",
    "enriched-by",
    "scored",
    "reduced-into",
    "shared-to",
    "synced-from",
)

_KIND_SET = frozenset(LINEAGE_KINDS)


def trace_id_for(event_uuid: str) -> str:
    """The stable trace id of an IoC: content-derived, identical cross-org."""
    return content_uuid("trace", event_uuid)


@dataclass(frozen=True)
class ProvenanceEvent:
    """One lineage row, as stored in the ``provenance`` table."""

    trace_id: str
    event_uuid: str
    kind: str
    actor: str = ""
    org: str = ""
    detail: str = ""
    cycle: int = 0
    logged_at: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the ``caop trace --json`` row shape)."""
        return {
            "trace_id": self.trace_id,
            "event_uuid": self.event_uuid,
            "kind": self.kind,
            "actor": self.actor,
            "org": self.org,
            "detail": self.detail,
            "cycle": self.cycle,
            "logged_at": self.logged_at,
        }


class ProvenanceRecorder:
    """Buffers lineage rows per cycle; one ``executemany`` flush per flush.

    ``record`` is only called from coordinating threads over drain-ordered
    results, so the buffered row order — and therefore the persisted
    ``seq`` order — is identical for any worker count.  The lock is purely
    defensive.
    """

    def __init__(self, store: Any = None, clock: Any = None,
                 org: str = "CAOP", enabled: bool = True) -> None:
        self._store = store
        self._clock = clock
        self.org = org
        self.enabled = bool(enabled and store is not None)
        self._cycle = 0
        self._lock = threading.Lock()
        self._buffer: List[ProvenanceEvent] = []

    @property
    def store(self) -> Any:
        """The store flushes land in (the local MISP instance's)."""
        return self._store

    def begin_cycle(self, cycle: int) -> None:
        """Stamp subsequently recorded rows with this cycle number."""
        self._cycle = cycle

    def record(self, kind: str, event_uuid: str, actor: str = "",
               detail: str = "") -> None:
        """Buffer one lineage row (no-op when disabled)."""
        if kind not in _KIND_SET:
            raise ValidationError(f"unknown lineage kind {kind!r}")
        if not self.enabled:
            return
        logged_at = (int(self._clock.now().timestamp())
                     if self._clock is not None else 0)
        row = ProvenanceEvent(
            trace_id=trace_id_for(event_uuid), event_uuid=event_uuid,
            kind=kind, actor=actor, org=self.org, detail=detail,
            cycle=self._cycle, logged_at=logged_at)
        with self._lock:
            self._buffer.append(row)

    @property
    def pending(self) -> int:
        """Rows buffered but not yet flushed."""
        with self._lock:
            return len(self._buffer)

    def flush(self) -> int:
        """Persist every buffered row in one batch; returns the row count."""
        with self._lock:
            rows, self._buffer = self._buffer, []
        if rows:
            self._store.add_provenance(rows)
        return len(rows)


#: Shared always-disabled recorder (mirrors ``NULL_REGISTRY``).
NULL_RECORDER = ProvenanceRecorder(enabled=False)


def origin_path(store: Any, event_uuid: str, self_org: str) -> List[str]:
    """The org path an outgoing share should carry for this event.

    Locally born events yield ``[self_org]``; an event this store received
    via sync extends the path its latest ``synced-from`` row recorded, so
    the context C receives through B reads ``["org-a", "org-b"]``.
    """
    path: List[str] = []
    for row in reversed(store.provenance_for_event(event_uuid)):
        if row["kind"] != "synced-from":
            continue
        try:
            path = list(json.loads(row["detail"]).get("path", []))
        except (ValueError, AttributeError):
            path = []
        break
    return path + [self_org]


def share_context(store: Any, event_uuid: str, self_org: str) -> Dict[str, Any]:
    """The trace context a MISP push carries alongside one event."""
    return {"trace_id": trace_id_for(event_uuid),
            "path": origin_path(store, event_uuid, self_org)}


def _hop_depth(rows: Sequence[Dict[str, Any]]) -> int:
    """How many sync hops upstream of this store the event originated."""
    depth = 0
    for row in rows:
        if row["kind"] != "synced-from":
            continue
        try:
            depth = max(depth, len(json.loads(row["detail"]).get("path", [])))
        except (ValueError, AttributeError):
            continue
    return depth


def stitch_lineage(stores: Iterable[Tuple[str, Any]],
                   event_uuid: str) -> Dict[str, Any]:
    """Reassemble one event's cross-org journey from several stores.

    ``stores`` is ``(label, MispStore)`` pairs; any store without
    provenance or audit rows for the event is skipped.  Hops are ordered
    origin-first by their recorded sync path depth, so the tree reads
    feed-fetch downward to the last sync receipt.
    """
    hops: List[Dict[str, Any]] = []
    for label, store in stores:
        rows = store.provenance_for_event(event_uuid)
        audit = store.event_history(event_uuid)
        if not rows and not audit:
            continue
        org = next((row["org"] for row in rows if row["org"]), label)
        hops.append({
            "store": label,
            "org": org,
            "depth": _hop_depth(rows),
            "lineage": rows,
            "audit": audit,
        })
    hops.sort(key=lambda hop: (hop["depth"], hop["store"]))
    return {"event_uuid": event_uuid, "trace_id": trace_id_for(event_uuid),
            "hops": hops}


def render_lineage(tree: Dict[str, Any]) -> str:
    """The ``caop trace`` view: one hop block per store, origin first."""
    lines = [f"trace {tree['trace_id']}", f"event {tree['event_uuid']}"]
    if not tree["hops"]:
        lines.append("  (no provenance recorded for this event)")
        return "\n".join(lines)
    for hop in tree["hops"]:
        lines.append(f"└─ hop {hop['depth']} · org {hop['org']} "
                     f"[{hop['store']}]")
        for row in hop["audit"]:
            lines.append(f"   store   #{row['seq']:<3} "
                         f"{row['action']:<13} {row['detail']}".rstrip())
        for row in hop["lineage"]:
            lines.append(f"   lineage c{row['cycle']:<3} "
                         f"{row['kind']:<13} {row['actor']:<10} "
                         f"{row['detail']}".rstrip())
    return "\n".join(lines)
