"""Observability layer: metrics, tracing, provenance, logs, and SLOs.

Every pipeline component accepts an optional :class:`MetricsRegistry`; the
platform wiring (`ContextAwareOSINTPlatform.build_with_feeds`) creates one
registry + one :class:`Tracer` and threads them through the whole Fig. 1
architecture.  On top of that substrate sit three subsystems (PR 6):

- :mod:`repro.obs.provenance` — stable per-IoC trace ids and typed
  lineage events, persisted in the store and stitched cross-org;
- :mod:`repro.obs.log` — structured JSON logging with deterministic
  emission order across any worker count;
- :mod:`repro.obs.slo` / :mod:`repro.obs.timeseries` — per-cycle metric
  snapshots and declarative SLO rules evaluated with fast/slow burn-rate
  windows.

See ``docs/OBSERVABILITY.md`` for the metric catalog, the log record
schema, the provenance model, and SLO semantics.
"""

from .log import (
    LOG_LEVELS,
    LOG_RECORD_SCHEMA,
    NULL_LOG,
    LogBuffer,
    StructuredLog,
    validate_record,
    validate_records,
)
from .metrics import (
    BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    OVERFLOW_KEY,
    SCORE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .provenance import (
    LINEAGE_KINDS,
    NULL_RECORDER,
    ProvenanceEvent,
    ProvenanceRecorder,
    origin_path,
    render_lineage,
    share_context,
    stitch_lineage,
    trace_id_for,
)
from .slo import SloEngine, SloRule, SloStatus, default_slo_rules
from .timeseries import CycleSnapshot, MetricTimeSeries
from .trace import SPAN_METRIC, Span, Tracer

__all__ = [
    "BYTES_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "LINEAGE_KINDS",
    "LOG_LEVELS",
    "LOG_RECORD_SCHEMA",
    "NULL_LOG",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "OVERFLOW_KEY",
    "SCORE_BUCKETS",
    "SPAN_METRIC",
    "Counter",
    "CycleSnapshot",
    "Gauge",
    "Histogram",
    "LogBuffer",
    "Metric",
    "MetricTimeSeries",
    "MetricsRegistry",
    "ProvenanceEvent",
    "ProvenanceRecorder",
    "SloEngine",
    "SloRule",
    "SloStatus",
    "Span",
    "StructuredLog",
    "Tracer",
    "default_slo_rules",
    "origin_path",
    "render_lineage",
    "share_context",
    "stitch_lineage",
    "trace_id_for",
    "validate_record",
    "validate_records",
]
