"""Observability substrate: metrics registry + span tracing.

Every pipeline component accepts an optional :class:`MetricsRegistry`; the
platform wiring (`ContextAwareOSINTPlatform.build_with_feeds`) creates one
registry + one :class:`Tracer` and threads them through the whole Fig. 1
architecture.  See ``docs/OBSERVABILITY.md`` for the metric catalog.
"""

from .metrics import (
    BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    SCORE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .trace import SPAN_METRIC, Span, Tracer

__all__ = [
    "BYTES_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "SCORE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "SPAN_METRIC",
    "Span",
    "Tracer",
]
