"""Metrics primitives: the platform's telemetry registry.

The paper's Operational Module is evaluated by how fast and how completely
cIoCs flow from OSINT feeds through MISP and the heuristic component to the
dashboard.  This module is the substrate that makes that flow measurable:
a :class:`MetricsRegistry` holds named :class:`Counter`, :class:`Gauge` and
:class:`Histogram` families, each optionally labelled
(``feed_events_total{feed="malware-domains"}``), and renders them either as
a JSON-able snapshot (for benches and dashboards) or as Prometheus-style
text exposition (for scrapers and the ``/metrics`` view).

Design points:

- **Thread-safe.**  Sensors, feed pollers and consumers may run on
  different threads; every mutation happens under a per-family lock and
  exposition takes a consistent pass over the registry.
- **Disable-able.**  A registry built with ``enabled=False`` turns every
  ``inc``/``set``/``observe`` into an early-return no-op, so the overhead
  benchmark can compare instrumented against uninstrumented runs without
  re-wiring the platform.
- **Get-or-create.**  ``registry.counter(name)`` returns the existing
  family when the name is already registered (and raises on a kind
  mismatch), so independent components can share series safely.
"""

from __future__ import annotations

import json
import re
import threading
import warnings
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ValidationError

#: Default latency buckets (seconds): sub-millisecond to ten seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for threat scores (Equation 1 yields values in [0, 5]).
SCORE_BUCKETS: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)

#: Payload-size buckets (bytes): one shared document or bundle lands here
#: (``caop_share_payload_bytes`` and friends).
BYTES_BUCKETS: Tuple[float, ...] = (
    128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1048576)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A label set frozen into a hashable, deterministically ordered key.
LabelKey = Tuple[Tuple[str, str], ...]

#: The series high-cardinality writes are clamped onto once a family hits
#: the registry's per-metric label-set limit.
OVERFLOW_KEY: LabelKey = (("overflow", "true"),)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValidationError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Metric:
    """Base class for one named metric family (all series share the name)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry") -> None:
        if not _NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._registry = registry
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}
        #: Writes redirected to :data:`OVERFLOW_KEY` by the cardinality guard.
        self.clamped = 0
        self._overflow_warned = False

    @property
    def _enabled(self) -> bool:
        return self._registry.enabled

    def _guard(self, key: LabelKey) -> LabelKey:
        """Cardinality guard: clamp new label sets past the registry limit.

        Must be called with ``self._lock`` held.  Existing series keep
        recording; a *new* label set beyond ``max_label_sets`` is warned
        about once and redirected to the shared overflow series, so a
        per-trace or per-entity label can never grow the exposition
        without bound.
        """
        limit = self._registry.max_label_sets
        if limit <= 0 or key in self._series or len(self._series) < limit:
            return key
        if not self._overflow_warned:
            self._overflow_warned = True
            warnings.warn(
                f"metric {self.name} exceeded {limit} label sets; "
                f"further label combinations are clamped to "
                f"{{overflow=\"true\"}}", RuntimeWarning, stacklevel=4)
        self.clamped += 1
        return OVERFLOW_KEY

    def label_sets(self) -> List[Dict[str, str]]:
        """Every label combination this family has recorded."""
        with self._lock:
            return [dict(key) for key in self._series]

    def clear(self) -> None:
        """Drop every recorded series (the family itself stays registered)."""
        with self._lock:
            self._series.clear()
            self.clamped = 0
            self._overflow_warned = False

    # Subclasses implement the sample walk used by snapshot/exposition.
    def _samples(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def _exposition_lines(self) -> List[str]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be non-negative) to the labelled series."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (amount={amount})")
        if not self._enabled:
            return
        key = _label_key(labels)
        with self._lock:
            key = self._guard(key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 when never incremented)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._series.values()))

    def _samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": dict(key), "value": value} for key, value in items]

    def _exposition_lines(self) -> List[str]:
        return [f"{self.name}{_render_labels(key)} {_format_value(value)}"
                for key, value in sorted(self._series.items())]


class Gauge(Metric):
    """A value that can go up and down (queue depth, hit ratio, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Pin the labelled series to ``value``."""
        if not self._enabled:
            return
        key = _label_key(labels)
        with self._lock:
            key = self._guard(key)
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        if not self._enabled:
            return
        key = _label_key(labels)
        with self._lock:
            key = self._guard(key)
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 when never set)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    _samples = Counter._samples
    _exposition_lines = Counter._exposition_lines


class _HistogramSeries:
    """Mutable per-label-set state: non-cumulative bucket counts + sum."""

    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution (latency, score spread).

    Buckets are upper bounds, ascending; an implicit ``+Inf`` bucket catches
    the tail.  Exposition is cumulative, Prometheus-style.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry",
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help_text, registry)
        bounds = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds:
            raise ValidationError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValidationError(
                f"histogram {name} buckets must be strictly ascending")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        if not self._enabled:
            return
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            key = self._guard(key)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value

    def count(self, **labels: Any) -> int:
        """Number of observations in one labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observations in one labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.sum if series is not None else 0.0

    def mean(self, **labels: Any) -> float:
        """Mean observation (0.0 when the series is empty)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            return series.sum / series.count

    def cumulative_buckets(self, **labels: Any) -> List[Tuple[str, int]]:
        """Cumulative ``(upper_bound, count)`` pairs ending with ``+Inf``."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = (list(series.bucket_counts) if series is not None
                      else [0] * (len(self.buckets) + 1))
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            pairs.append((_format_value(bound), running))
        pairs.append(("+Inf", running + counts[-1]))
        return pairs

    def _samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(
                (key, list(series.bucket_counts), series.count, series.sum)
                for key, series in self._series.items())
        samples = []
        for key, counts, count, total in items:
            cumulative: Dict[str, int] = {}
            running = 0
            for bound, bucket_count in zip(self.buckets, counts):
                running += bucket_count
                cumulative[_format_value(bound)] = running
            cumulative["+Inf"] = running + counts[-1]
            samples.append({"labels": dict(key), "count": count,
                            "sum": total, "buckets": cumulative})
        return samples

    def _exposition_lines(self) -> List[str]:
        lines: List[str] = []
        for sample in self._samples():
            key = _label_key(sample["labels"])
            for bound, cumulative in sample["buckets"].items():
                bucket_key = key + (("le", bound),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(bucket_key)} {cumulative}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(sample['sum'])}")
            lines.append(
                f"{self.name}_count{_render_labels(key)} {sample['count']}")
        return lines


class MetricsRegistry:
    """Named metric families with JSON and Prometheus-style exposition."""

    def __init__(self, enabled: bool = True,
                 max_label_sets: int = 1024) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.RLock()
        self.enabled = enabled
        #: Per-metric label-set ceiling; new combinations beyond it are
        #: clamped to ``{overflow="true"}`` (0 disables the guard).
        self.max_label_sets = max_label_sets

    # -- registration (get-or-create) -----------------------------------------

    def _get_or_create(self, name: str, kind: type, **kwargs: Any) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.kind}")  # type: ignore[attr-defined]
                return existing
            metric = kind(name, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(name, Counter, help_text=help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(name, Gauge, help_text=help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram family with fixed buckets."""
        return self._get_or_create(
            name, Histogram, help_text=help_text, buckets=buckets)  # type: ignore[return-value]

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        """The registered family for ``name``, if any."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def enable(self) -> None:
        """Resume recording."""
        self.enabled = True

    def disable(self) -> None:
        """Turn every mutation into a no-op (families stay registered)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every series in every family (families stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.clear()

    # -- exposition ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able view: name -> {type, help, samples}."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            metric.name: {
                "type": metric.kind,
                "help": metric.help,
                "samples": metric._samples(),
            }
            for metric in sorted(metrics, key=lambda m: m.name)
        }

    def render_json(self, indent: Optional[int] = None) -> str:
        """The snapshot serialized to a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (``# HELP`` / ``# TYPE`` blocks)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._exposition_lines())
        return "\n".join(lines) + ("\n" if lines else "")


#: Shared always-disabled registry: components fall back to it when no
#: registry is wired in, so instrumentation code never needs a None check.
NULL_REGISTRY = MetricsRegistry(enabled=False)
