"""Per-cycle metric snapshots on a bounded ring buffer.

The SLO engine needs short history — enough cycles to cover its slow
burn-rate window — not a full TSDB.  :class:`MetricTimeSeries` keeps one
:class:`CycleSnapshot` per platform cycle (a flat ``name -> float``
mapping) on a ``deque`` and answers windowed queries: the value series of
one metric over the last N cycles, its latest value, and nearest-rank
percentiles (the ``cycle p99 latency`` objective).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class CycleSnapshot:
    """One cycle's scalar metric values at one simulated instant."""

    cycle: int
    at: Any
    values: Mapping[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = 0.0) -> float:
        """One value, defaulting when the cycle didn't record it."""
        return float(self.values.get(key, default))


class MetricTimeSeries:
    """Ring buffer of :class:`CycleSnapshot`, newest last."""

    def __init__(self, capacity: int = 512) -> None:
        self._snapshots: Deque[CycleSnapshot] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def capacity(self) -> int:
        """Maximum retained cycles (older snapshots fall off the front)."""
        return self._snapshots.maxlen or 0

    def append(self, cycle: int, at: Any,
               values: Mapping[str, float]) -> CycleSnapshot:
        """Record one cycle's values; returns the stored snapshot."""
        snapshot = CycleSnapshot(
            cycle=cycle, at=at,
            values={key: float(value) for key, value in values.items()})
        self._snapshots.append(snapshot)
        return snapshot

    def last(self, count: Optional[int] = None) -> List[CycleSnapshot]:
        """The newest ``count`` snapshots (all of them when None), oldest first."""
        snapshots = list(self._snapshots)
        if count is None:
            return snapshots
        return snapshots[-count:] if count > 0 else []

    def latest(self, key: str) -> Optional[float]:
        """The most recent value of one metric, if any cycle recorded it."""
        for snapshot in reversed(self._snapshots):
            if key in snapshot.values:
                return float(snapshot.values[key])
        return None

    def series(self, key: str,
               window: Optional[int] = None) -> List[float]:
        """The metric's values over the last ``window`` cycles, oldest first.

        Cycles that did not record the metric are skipped (not zero-filled)
        so a rule over an optional metric only judges cycles that measured
        it.
        """
        return [float(snapshot.values[key])
                for snapshot in self.last(window)
                if key in snapshot.values]

    def percentile(self, key: str, quantile: float,
                   window: Optional[int] = None) -> float:
        """Nearest-rank percentile (``quantile`` in [0, 1]) over a window."""
        values = sorted(self.series(key, window))
        if not values:
            return 0.0
        quantile = min(max(quantile, 0.0), 1.0)
        rank = max(1, math.ceil(quantile * len(values)))
        return values[rank - 1]

    def to_dict(self) -> List[Dict[str, Any]]:
        """JSON-friendly view of the retained snapshots, oldest first."""
        return [{"cycle": s.cycle, "at": str(s.at), "values": dict(s.values)}
                for s in self._snapshots]
