"""Declarative SLOs evaluated with multi-window burn rates.

An :class:`SloRule` states an objective over one per-cycle metric ("cycle
p99 latency <= 2s", "at most 5% degraded cycles") plus an error budget:
the fraction of cycles allowed to violate the objective.  The engine
evaluates each rule over two windows of the cycle time series
(:class:`~repro.obs.timeseries.MetricTimeSeries`):

- the **burn rate** of a window is ``bad_fraction / budget`` — how many
  times faster than allowed the error budget is being consumed (1.0 means
  exactly on budget);
- **fast window** (default 5 cycles) catches sharp regressions quickly;
- **slow window** (default 20 cycles) confirms they are sustained.

Severity follows the multi-window pattern from the SRE literature: a rule
is ``failing`` (page) only when *both* windows burn hot — the fast window
above ``fast_burn`` and the slow window above ``slow_burn`` — and
``degraded`` (ticket) when either the fast window spikes or the slow
window shows the budget burning at all (slow burn >= 1.0).  Statuses are
exported as ``caop_slo_*`` gauges and merged into
:class:`~repro.resilience.health.PlatformHealth` as ``slo:<rule>``
components by the platform (this module deliberately does not import the
resilience layer — severities reuse the same ok/degraded/failing strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ValidationError
from .metrics import MetricsRegistry, NULL_REGISTRY
from .timeseries import MetricTimeSeries

SLO_OK = "ok"
SLO_DEGRADED = "degraded"
SLO_FAILING = "failing"

_COMPARATORS = {
    "<=": lambda value, objective: value <= objective,
    ">=": lambda value, objective: value >= objective,
    "<": lambda value, objective: value < objective,
    ">": lambda value, objective: value > objective,
}


@dataclass(frozen=True)
class SloRule:
    """One objective over a per-cycle metric, with burn-rate windows."""

    name: str
    metric: str
    objective: float
    comparison: str = "<="
    #: Fraction of cycles allowed to violate the objective.
    budget: float = 0.05
    fast_window: int = 5
    slow_window: int = 20
    #: Burn-rate multiples that, exceeded *together*, mean ``failing``.
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in _COMPARATORS:
            raise ValidationError(
                f"slo {self.name}: unknown comparison {self.comparison!r}")
        if not 0.0 < self.budget <= 1.0:
            raise ValidationError(
                f"slo {self.name}: budget must be in (0, 1]")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValidationError(
                f"slo {self.name}: need 0 < fast_window <= slow_window")

    def is_good(self, value: float) -> bool:
        """Whether one cycle's value satisfies the objective."""
        return _COMPARATORS[self.comparison](value, self.objective)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloRule":
        """Build a rule from its JSON form (the ``caop slo --rules`` file)."""
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise ValidationError(f"slo rule: unknown fields {unknown}")
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ValidationError(f"slo rule: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rule definition."""
        return {
            "name": self.name, "metric": self.metric,
            "objective": self.objective, "comparison": self.comparison,
            "budget": self.budget, "fast_window": self.fast_window,
            "slow_window": self.slow_window, "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn, "description": self.description,
        }


@dataclass
class SloStatus:
    """One rule's evaluation at one instant."""

    rule: SloRule
    severity: str = SLO_OK
    fast_burn_rate: float = 0.0
    slow_burn_rate: float = 0.0
    #: Fraction of slow-window cycles meeting the objective (1.0 = all).
    compliance: float = 1.0
    samples: int = 0
    detail: str = ""

    @property
    def alerting(self) -> bool:
        """Whether this status should raise an alert."""
        return self.severity != SLO_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly status (CLI/report surface)."""
        return {
            "rule": self.rule.name,
            "severity": self.severity,
            "fast_burn_rate": self.fast_burn_rate,
            "slow_burn_rate": self.slow_burn_rate,
            "compliance": self.compliance,
            "samples": self.samples,
            "detail": self.detail,
        }


def default_slo_rules() -> List[SloRule]:
    """The platform's stock SLOs over ``run_cycle`` snapshot values."""
    return [
        SloRule(
            name="cycle-latency", metric="cycle_seconds", objective=2.0,
            comparison="<=", budget=0.05,
            description="A pipeline cycle completes within 2 s wall-clock."),
        SloRule(
            name="degraded-cycles", metric="degraded", objective=0.0,
            comparison="<=", budget=0.05,
            description="At most 5% of cycles run degraded (stage errors)."),
        SloRule(
            name="drop-ratio", metric="drop_ratio", objective=0.01,
            comparison="<=", budget=0.10,
            description="Fetched records dropped by faults stay under 1%."),
        SloRule(
            name="share-staleness", metric="share_stale_cycles",
            objective=1.0, comparison="<=", budget=0.10,
            description="Outbound shares lag at most one cycle behind."),
    ]


class SloEngine:
    """Evaluates SLO rules over the per-cycle time series."""

    def __init__(self, rules: Optional[Sequence[SloRule]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 capacity: int = 512) -> None:
        self.rules: List[SloRule] = list(
            rules if rules is not None else default_slo_rules())
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValidationError("slo rule names must be unique")
        self.timeseries = MetricTimeSeries(capacity=capacity)
        self._statuses: List[SloStatus] = []
        metrics = metrics or NULL_REGISTRY
        self._m_burn = metrics.gauge(
            "caop_slo_burn_rate",
            "Error-budget burn rate per SLO rule and window "
            "(1.0 = burning exactly on budget)")
        self._m_compliance = metrics.gauge(
            "caop_slo_compliance",
            "Fraction of slow-window cycles meeting each SLO objective")
        self._m_alert_cycles = metrics.counter(
            "caop_slo_alert_cycles_total",
            "Evaluations in which an SLO rule was alerting, by severity")

    def observe_cycle(self, cycle: int, at: Any,
                      values: Mapping[str, float]) -> None:
        """Snapshot one cycle's metric values into the time series.

        The platform feeds ``cycle_seconds``, ``degraded``, ``drop_ratio``,
        ``share_stale_cycles``, the per-cycle production counts
        (``ciocs_created``, ``eiocs_created``, ``shares_sent``) and the
        steady-state signals ``deltas_consumed`` / ``idle`` (1.0 on quiet
        cycles), so custom rules can state objectives over any of them.
        """
        self.timeseries.append(cycle, at, values)

    @staticmethod
    def _bad_fraction(rule: SloRule, values: Sequence[float]) -> float:
        if not values:
            return 0.0
        bad = sum(1 for value in values if not rule.is_good(value))
        return bad / len(values)

    def evaluate(self) -> List[SloStatus]:
        """Re-evaluate every rule against the current time series."""
        statuses: List[SloStatus] = []
        for rule in self.rules:
            fast_values = self.timeseries.series(rule.metric, rule.fast_window)
            slow_values = self.timeseries.series(rule.metric, rule.slow_window)
            fast = self._bad_fraction(rule, fast_values) / rule.budget
            slow = self._bad_fraction(rule, slow_values) / rule.budget
            compliance = 1.0 - self._bad_fraction(rule, slow_values)
            if fast >= rule.fast_burn and slow >= rule.slow_burn:
                severity = SLO_FAILING
            elif fast >= rule.fast_burn or slow >= 1.0:
                severity = SLO_DEGRADED
            else:
                severity = SLO_OK
            status = SloStatus(
                rule=rule, severity=severity, fast_burn_rate=fast,
                slow_burn_rate=slow, compliance=compliance,
                samples=len(slow_values),
                detail=(f"burn fast={fast:.2f}x slow={slow:.2f}x "
                        f"compliance={compliance:.0%} "
                        f"over {len(slow_values)} cycle(s)"))
            statuses.append(status)
            self._m_burn.set(fast, rule=rule.name, window="fast")
            self._m_burn.set(slow, rule=rule.name, window="slow")
            self._m_compliance.set(compliance, rule=rule.name)
            if status.alerting:
                self._m_alert_cycles.inc(rule=rule.name,
                                         severity=status.severity)
        self._statuses = statuses
        return statuses

    def last_statuses(self) -> List[SloStatus]:
        """The statuses from the most recent :meth:`evaluate` call."""
        return list(self._statuses)

    def alerts(self) -> List[SloStatus]:
        """The currently alerting statuses (degraded or failing)."""
        return [status for status in self._statuses if status.alerting]
