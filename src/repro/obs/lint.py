"""Metric hygiene lint: every registered family must carry help text.

``registry.counter(name)`` defaults ``help_text`` to the empty string, so
a hurried call site can register a family a scraper cannot explain.  This
lint builds a fully wired platform (every component registers its
families at construction), runs one cycle so dynamically exported gauges
(health, SLO burn rates) appear too, and fails if any family's help is
empty.  Wired into CI via ``make lint-metrics``::

    PYTHONPATH=src python -m repro.obs.lint
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from .metrics import MetricsRegistry


def metrics_without_help(registry: MetricsRegistry) -> List[str]:
    """Names of registered families whose help text is empty."""
    missing = []
    for name in registry.names():
        metric = registry.get(name)
        if metric is not None and not metric.help.strip():
            missing.append(name)
    return missing


def _platform_registry() -> MetricsRegistry:
    from ..core import ContextAwareOSINTPlatform, PlatformConfig
    from ..misp import MispInstance
    from ..sharing import ExternalEntity

    platform = ContextAwareOSINTPlatform.build_default(
        PlatformConfig(feed_entries=12))
    peer = MispInstance(org="lint-peer", clock=platform.clock)
    platform.gateway.register(ExternalEntity(
        name="lint-peer", transport="misp", misp_instance=peer))
    platform.run_cycle()
    return platform.metrics


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the lint; exit 0 when every family documents itself."""
    del argv
    registry = _platform_registry()
    missing = metrics_without_help(registry)
    if missing:
        print("metric families missing help text:")
        for name in missing:
            print(f"  {name}")
        return 1
    print(f"metric help lint: {len(registry.names())} families, "
          f"all documented")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make lint-metrics
    sys.exit(main())
