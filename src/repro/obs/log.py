"""Structured JSON logging with deterministic emission order.

Every record is a flat JSON object carrying a monotonically increasing
``seq``, the simulated-clock timestamp, the cycle number, the pipeline
``stage``, a short ``event`` name, and any scalar fields the call site
adds (``trace_id``, ``event_uuid``, counts, scores).  Records land on a
bounded ring buffer (:class:`StructuredLog`) and, optionally, a JSONL
file sink.

Determinism contract (docs/OBSERVABILITY.md): log emission follows the
same discipline as metrics and sync ledger writes in PRs 2/4/5 — worker
pools never emit directly.  Coordinating threads emit over drain-ordered
results, and code that *must* log from inside a pool task writes into a
per-task :class:`LogBuffer` that the coordinator flushes post-drain in
registration order, assigning ``seq`` and ``ts`` at flush time.  The
result: ``fetch_workers``/``enrich_workers``/``share_workers`` of 1 or 4
produce byte-identical ``to_jsonl()`` output.

:data:`LOG_RECORD_SCHEMA` is a JSON-Schema subset describing every
record; :func:`validate_record` checks it without external dependencies.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from ..clock import SimulatedClock, format_timestamp
from ..errors import ValidationError

#: Log severity vocabulary, least to most severe.
LOG_LEVELS: Tuple[str, ...] = ("debug", "info", "warn", "error")

#: JSON-Schema (subset) for one emitted record.  ``additionalProperties``
#: restricts every call-site field to JSON scalars — no nested payloads
#: in the log stream.
LOG_RECORD_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["seq", "ts", "level", "cycle", "stage", "event"],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "ts": {"type": "string"},
        "level": {"enum": list(LOG_LEVELS)},
        "cycle": {"type": "integer", "minimum": 0},
        "stage": {"type": "string"},
        "event": {"type": "string"},
        "span": {"type": "string"},
        "trace_id": {"type": "string"},
        "event_uuid": {"type": "string"},
    },
    "additionalProperties": {
        "type": ["string", "integer", "number", "boolean", "null"]},
}

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": (lambda v: isinstance(v, (int, float))
               and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    "object": lambda v: isinstance(v, dict),
}


def _matches_type(value: Any, allowed: Any) -> bool:
    types = [allowed] if isinstance(allowed, str) else list(allowed)
    return any(_TYPE_CHECKS[t](value) for t in types)


def validate_record(record: Any) -> List[str]:
    """Errors in ``record`` against :data:`LOG_RECORD_SCHEMA` (empty = valid)."""
    schema = LOG_RECORD_SCHEMA
    if not _matches_type(record, schema["type"]):
        return ["record is not an object"]
    errors = []
    for name in schema["required"]:
        if name not in record:
            errors.append(f"missing required field {name!r}")
    for name, value in record.items():
        spec = schema["properties"].get(name)
        if spec is None:
            if not _matches_type(value, schema["additionalProperties"]["type"]):
                errors.append(f"field {name!r} is not a JSON scalar")
            continue
        if "enum" in spec and value not in spec["enum"]:
            errors.append(f"field {name!r} value {value!r} not in enum")
            continue
        if "type" in spec and not _matches_type(value, spec["type"]):
            errors.append(f"field {name!r} has wrong type")
            continue
        if "minimum" in spec and value < spec["minimum"]:
            errors.append(f"field {name!r} below minimum")
    return errors


class LogBuffer:
    """Per-task log staging for worker-pool code.

    A pool task emits into its buffer; the coordinating thread flushes
    buffers post-drain in registration order via
    :meth:`StructuredLog.flush_buffer`, which assigns ``seq``/``ts`` then
    — so record order never depends on pool scheduling.
    """

    def __init__(self, log: "StructuredLog") -> None:
        self._log = log
        self.entries: List[Tuple[str, str, str, Dict[str, Any]]] = []

    def emit(self, stage: str, event: str, level: str = "info",
             **fields: Any) -> None:
        """Stage one record for the coordinator to flush."""
        if not self._log.enabled:
            return
        self.entries.append((stage, event, level, fields))


class StructuredLog:
    """Bounded ring buffer of JSON log records, with an optional file sink."""

    def __init__(self, clock: Any = None, capacity: int = 4096,
                 sink_path: Optional[str] = None,
                 enabled: bool = True) -> None:
        self._clock = clock if clock is not None else SimulatedClock()
        self.enabled = enabled
        self._records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._cycle = 0
        self._lock = threading.Lock()
        self._sink_path = sink_path
        self._sink: Any = None

    @property
    def capacity(self) -> int:
        """Ring-buffer size (older records fall off the front)."""
        return self._records.maxlen or 0

    def begin_cycle(self, cycle: int) -> None:
        """Stamp subsequently emitted records with this cycle number."""
        self._cycle = cycle

    def emit(self, stage: str, event: str, level: str = "info",
             **fields: Any) -> Optional[Dict[str, Any]]:
        """Append one record; returns it (or None when disabled)."""
        if not self.enabled:
            return None
        if level not in LOG_LEVELS:
            raise ValidationError(f"unknown log level {level!r}")
        with self._lock:
            record: Dict[str, Any] = {
                "seq": self._seq,
                "ts": format_timestamp(self._clock.now()),
                "level": level,
                "cycle": self._cycle,
                "stage": stage,
                "event": event,
            }
            for name in sorted(fields):
                record[name] = fields[name]
            self._seq += 1
            self._records.append(record)
            self._write_sink(record)
        return record

    def buffer(self) -> LogBuffer:
        """A fresh per-task staging buffer (see :class:`LogBuffer`)."""
        return LogBuffer(self)

    def flush_buffer(self, buffer: LogBuffer) -> int:
        """Emit a task buffer's staged records, in their staged order."""
        for stage, event, level, fields in buffer.entries:
            self.emit(stage, event, level, **fields)
        count = len(buffer.entries)
        buffer.entries = []
        return count

    def records(self) -> List[Dict[str, Any]]:
        """Every buffered record, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def tail(self, count: int = 20) -> List[Dict[str, Any]]:
        """The newest ``count`` records, oldest of them first."""
        with self._lock:
            return [dict(r) for r in list(self._records)[-count:]]

    def to_jsonl(self) -> str:
        """The buffer as canonical JSONL (sorted keys — byte-comparable)."""
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in self.records())

    def _write_sink(self, record: Dict[str, Any]) -> None:
        if self._sink_path is None:
            return
        if self._sink is None:
            self._sink = open(self._sink_path, "a", encoding="utf-8")
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        self._sink.flush()

    def close(self) -> None:
        """Close the file sink, if one was opened."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


#: Shared always-disabled log (mirrors ``NULL_REGISTRY``).
NULL_LOG = StructuredLog(enabled=False)


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema errors across many records, prefixed with their seq."""
    errors: List[str] = []
    for record in records:
        for error in validate_record(record):
            errors.append(f"seq {record.get('seq', '?')}: {error}")
    return errors
