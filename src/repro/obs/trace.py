"""Lightweight span tracing for the platform pipeline.

Each :meth:`Tracer.span` use opens a named span timed on the monotonic
clock (``time.perf_counter``); spans nest via a thread-local stack, so the
``run_cycle()`` root span ends up owning a stage-by-stage timing tree
(fetch -> parse -> normalize -> dedup -> ... -> push).  Completed root
spans are kept on a bounded deque for export; when a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, every span also
feeds the ``caop_span_seconds`` histogram so per-stage latency shows up in
the ``/metrics`` exposition without extra wiring.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry

#: Histogram fed by every completed span (label ``span`` = span name).
SPAN_METRIC = "caop_span_seconds"


class Span:
    """One timed pipeline stage; children are stages opened inside it."""

    __slots__ = ("name", "tags", "children", "duration_seconds", "error",
                 "_started")

    def __init__(self, name: str, tags: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.tags: Dict[str, Any] = dict(tags or {})
        self.children: List["Span"] = []
        self.duration_seconds: float = 0.0
        self.error = False
        self._started = time.perf_counter()

    def finish(self) -> None:
        """Freeze the duration (idempotent use is the tracer's job)."""
        self.duration_seconds = time.perf_counter() - self._started

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-able view of this span and its children."""
        data: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
        }
        if self.error:
            data["error"] = True
        if self.tags:
            data["tags"] = dict(self.tags)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def flatten(self) -> Dict[str, float]:
        """name -> total duration over this subtree (same names sum)."""
        totals: Dict[str, float] = {}
        stack = [self]
        while stack:
            span = stack.pop()
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_seconds
            stack.extend(span.children)
        return totals

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        stack = list(self.children)
        while stack:
            span = stack.pop(0)
            if span.name == name:
                return span
            stack.extend(span.children)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_seconds * 1000:.2f}ms, "
                f"children={len(self.children)})")


class Tracer:
    """Collects nested spans; completed root spans land on ``traces``."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 max_traces: int = 64, enabled: bool = True) -> None:
        self.enabled = enabled
        self.traces: Deque[Span] = deque(maxlen=max_traces)
        self._local = threading.local()
        self._attach_lock = threading.Lock()
        self._metrics = metrics
        self._span_hist = (
            metrics.histogram(SPAN_METRIC, "Duration of pipeline stage spans")
            if metrics is not None else None)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Optional[Span]]:
        """Open a child span of the current one (or a new root span).

        Exception-safe: the span is closed and recorded (flagged
        ``error=True``) even when the body raises, and the exception
        propagates unchanged.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        span = Span(name, tags)
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.error = True
            raise
        finally:
            span.finish()
            stack.pop()
            if stack:
                # Pool threads attached to the same parent append
                # concurrently; the lock keeps the children list intact
                # (ordering there reflects completion and is timing data,
                # not part of any determinism contract).
                with self._attach_lock:
                    stack[-1].children.append(span)
            else:
                self.traces.append(span)
            if self._span_hist is not None:
                self._span_hist.observe(span.duration_seconds, span=span.name)

    def capture(self) -> Optional[Span]:
        """The current span, for reattachment inside a worker-pool task.

        The span stack is thread-local, so a span opened inside a pool
        thread would otherwise become an orphan root trace instead of
        nesting under the cycle that spawned the work.  The coordinating
        thread calls ``capture()`` before submitting tasks and each task
        wraps its body in :meth:`attach`::

            parent = tracer.capture()
            def task(item):
                with tracer.attach(parent), tracer.span("score_event"):
                    ...
        """
        return self.current()

    @contextmanager
    def attach(self, parent: Optional[Span]) -> Iterator[None]:
        """Run the body with ``parent`` as this thread's span context.

        Spans opened inside the body become children of ``parent``; the
        thread's previous span stack is restored on exit.  A ``None``
        parent (tracing disabled, or no span open at capture time) leaves
        the thread's context untouched.
        """
        if not self.enabled or parent is None:
            yield
            return
        saved = getattr(self._local, "stack", None)
        self._local.stack = [parent]
        try:
            yield
        finally:
            self._local.stack = saved if saved is not None else []

    def last_trace(self) -> Optional[Span]:
        """The most recently completed root span."""
        return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        """Drop every recorded trace (open spans are unaffected)."""
        self.traces.clear()
