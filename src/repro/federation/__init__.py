"""Partition-tolerant N-org federation over a pluggable backbone.

Generalizes the point-to-point MISP sync into hub-and-spoke and mesh
topologies over N organisations, Threatbus-style:

- :class:`Topology` + :func:`mesh` / :func:`hub_and_spoke` / :func:`chain`
  — directed link graphs with deterministic BFS routing;
- :class:`Backbone` — the pluggable message fabric
  (:class:`InMemoryBackbone` for perfect delivery,
  :class:`SimulatedNetworkBackbone` for chaos-driven lossy/partitionable
  links via the fault injector's ``link`` seam);
- :class:`FederationNode` — one org's full stack (MISP, delta-sync
  gateway with per-link breakers/retry/DLQ, heuristics, sightings,
  provenance) attached to the backbone;
- :class:`Federation` — wires nodes over a topology and drives
  deterministic rounds, dead-letter replay, and the **anti-entropy**
  reconciliation stage (:mod:`repro.federation.antientropy`) that repairs
  divergence after partitions heal;
- :func:`store_fingerprint` — the canonical full-state fingerprint
  (events, correlations, sync ledger, provenance lineage) convergence is
  measured against.

See ``docs/FEDERATION.md`` for the protocol and guarantees.
"""

from .antientropy import build_offer, handle_offer, reconcile
from .backbone import (
    Backbone,
    InMemoryBackbone,
    KIND_DIGEST_OFFER,
    KIND_EVENT,
    KIND_SIGHTING,
    LinkStats,
    SimulatedNetworkBackbone,
)
from .fingerprint import event_blob, store_fingerprint, store_state
from .node import Federation, FederationNode, prefers_incoming
from .topology import Topology, chain, hub_and_spoke, mesh

__all__ = [
    "Backbone",
    "Federation",
    "FederationNode",
    "InMemoryBackbone",
    "KIND_DIGEST_OFFER",
    "KIND_EVENT",
    "KIND_SIGHTING",
    "LinkStats",
    "SimulatedNetworkBackbone",
    "Topology",
    "build_offer",
    "chain",
    "event_blob",
    "handle_offer",
    "hub_and_spoke",
    "mesh",
    "prefers_incoming",
    "reconcile",
    "store_fingerprint",
    "store_state",
]
