"""Canonical full-state fingerprints for convergence proofs.

A federation "converges" when every org's *entire* store agrees with the
fault-free baseline — not just the event corpus, but the correlation
edges, the delta-sync ledger (watermarks + digests) and the provenance
lineage too.  :func:`store_fingerprint` folds all four into one sha256
over a canonical JSON form.

Two classes of field are excluded on purpose:

- ``seq`` / ``cycle`` / ``logged_at`` on provenance rows and watermark
  bookkeeping: these record *when* a run learned something, and a faulted
  run legitimately learns later than the baseline;
- row order beyond the canonical sort: arrival order differs under
  partitions, content must not.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from ..misp.store import MispStore

#: Provenance fields that record processing time, not lineage content.
_PROVENANCE_TIME_FIELDS = ("seq", "cycle", "logged_at")


def store_state(store: MispStore) -> Dict[str, Any]:
    """The canonical, order-free view of one store's full state."""
    events = sorted(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in store.list_events())
    uuids = sorted(
        event.uuid for event in store.list_events() if event.uuid)
    correlations = sorted(
        json.dumps(row, sort_keys=True)
        for rows in store.correlations_for_events(uuids).values()
        for row in rows)
    provenance: List[str] = []
    for uuid in uuids:
        for row in store.provenance_for_event(uuid):
            slim = {key: value for key, value in row.items()
                    if key not in _PROVENANCE_TIME_FIELDS}
            provenance.append(json.dumps(slim, sort_keys=True))
    provenance.sort()
    return {
        "events": events,
        "correlations": correlations,
        "sync": {
            "watermarks": store.sync_watermarks(),
            "digests": [list(row) for row in store.sync_digest_rows()],
        },
        "provenance": provenance,
    }


def store_fingerprint(store: MispStore) -> str:
    """sha256 over the canonical full-state view of one store."""
    return hashlib.sha256(
        json.dumps(store_state(store), sort_keys=True).encode()).hexdigest()


def event_blob(store: MispStore) -> str:
    """Event-content-only canonical blob (the PR-5 harness's comparator)."""
    return json.dumps(sorted(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in store.list_events()), sort_keys=True)
