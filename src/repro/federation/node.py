"""Federation nodes and the N-org federation orchestrator.

A :class:`FederationNode` is one organisation's full stack — MISP instance,
sharing gateway (delta-sync ledger, per-link circuit breakers, retry,
dead-letter quarantine), heuristic component, sighting processor and
provenance recorder — attached to a :class:`~repro.federation.Backbone`.
Outbound links are ordinary gateway entities with the ``backbone``
transport, so the whole PR-5 delta-sync machinery (watermarks, digest
ledgers, render cache, DLQ replay) drives N-org topologies unchanged.

The **sightings feedback loop** closes here: any org can observe an
eIoC-derived value in its own infrastructure; the sighting record is routed
hop-by-hop over the backbone back to the event's *origin* org (learned from
the provenance trace that rode with the event), where it re-scores the eIoC
— and the bumped timestamp lets the re-scored version flow back out through
normal sync cycles.

:class:`Federation` wires nodes over a :class:`~repro.federation.Topology`
and drives deterministic rounds: org-by-org sync cycles, sighting flushes,
and an optional anti-entropy reconciliation stage.  The whole stack runs on
one pinned simulated clock with zero-cooldown breakers and recording
sleepers, so a faulted run converges *byte-identically* (full store
fingerprints) onto the fault-free baseline.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, List, Optional

from ..clock import Clock, PAPER_NOW, SimulatedClock
from ..core.enrich import HeuristicComponent
from ..core.sightings import RescoreOutcome, SightingProcessor
from ..errors import SharingError
from ..infra import paper_inventory
from ..misp import MispEvent, MispInstance
from ..misp.sharing_groups import SharingGroup
from ..obs import MetricsRegistry, ProvenanceRecorder
from ..resilience import CircuitBreakerBoard, DeadLetterQueue, RetryPolicy
from ..resilience.retry import sleeper_for
from ..sharing import ExternalEntity, SharingGateway, SharingPolicy, Tlp
from ..sharing.sync import ShareCycleReport, event_digest
from .backbone import Backbone, InMemoryBackbone, KIND_EVENT, KIND_SIGHTING
from .fingerprint import event_blob, store_fingerprint
from .topology import Topology


def _epoch(stamp: Optional[_dt.datetime]) -> int:
    return int(stamp.timestamp()) if stamp is not None else 0


def prefers_incoming(incoming_ts: int, incoming_digest: str,
                     held_ts: int, held_digest: str) -> bool:
    """Anti-entropy resolution: should the held copy be replaced?

    Newer timestamp wins; on a timestamp tie with *different* content the
    lexicographically larger digest wins — an arbitrary but symmetric
    rule, so two divergent replicas always agree on the same survivor.
    """
    if incoming_digest == held_digest:
        return False
    if incoming_ts != held_ts:
        return incoming_ts > held_ts
    return incoming_digest > held_digest


class FederationNode:
    """One organisation on the backbone: MISP + gateway + sightings."""

    def __init__(self, name: str, backbone: Backbone, topology: Topology,
                 clock: Optional[Clock] = None, *,
                 workers: int = 2,
                 policy: Optional[SharingPolicy] = None,
                 accept_ceiling: str = Tlp.RED,
                 failure_threshold: int = 3,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.name = name
        self.backbone = backbone
        self.topology = topology
        self.clock = clock or SimulatedClock(PAPER_NOW)
        self.misp = MispInstance(org=name, clock=self.clock, metrics=metrics)
        self.provenance = ProvenanceRecorder(
            store=self.misp.store, clock=self.clock, org=name)
        self.deadletters = DeadLetterQueue(clock=self.clock)
        self.policy = policy or SharingPolicy()
        #: Most restrictive TLP marking this org accepts *inbound*.
        self.accept_ceiling = accept_ceiling
        # Zero-cooldown breakers + recording sleeper keep the simulated
        # clock pinned: every timestamp an org ever writes is a function of
        # content, so faulted runs can match the baseline byte-for-byte.
        self.gateway = SharingGateway(
            self.misp, self.policy,
            workers=workers,
            retry_policy=retry_policy or RetryPolicy(max_retries=1, seed=11),
            breakers=CircuitBreakerBoard(
                clock=self.clock, failure_threshold=failure_threshold,
                cooldown_seconds=0.0),
            deadletters=self.deadletters,
            clock=self.clock,
            sleeper=sleeper_for("none", self.clock),
            metrics=metrics,
            provenance=self.provenance)
        self.heuristics = HeuristicComponent(
            self.misp, inventory=paper_inventory(), clock=self.clock,
            provenance=self.provenance, metrics=metrics)
        self.sightings = SightingProcessor(
            self.misp, self.heuristics, clock=self.clock)
        #: event uuid -> origin org (from the provenance path that rode in).
        self.origins: Dict[str, str] = {}
        #: Sighting records queued for (re-)routing toward their origin.
        self.pending_sightings: List[Dict[str, Any]] = []
        #: Rescore outcomes of sightings applied at this org (it's origin).
        self.rescores: List[RescoreOutcome] = []
        backbone.connect(name, self._handle)

    # -- wiring ---------------------------------------------------------------

    def link_to(self, dst: str) -> None:
        """Register the directed backbone link ``self`` → ``dst``."""
        self.gateway.register(ExternalEntity(
            name=dst, transport="backbone", backbone=self.backbone))

    # -- inbound --------------------------------------------------------------

    def _handle(self, src: str, kind: str,
                payload: Dict[str, Any]) -> Dict[str, Any]:
        if kind == KIND_EVENT:
            return self._handle_event(src, payload)
        if kind == KIND_SIGHTING:
            return self._handle_sighting(src, payload)
        if kind == "digest-offer":
            from .antientropy import handle_offer
            return handle_offer(self, src, payload)
        raise SharingError(f"unknown backbone message kind {kind!r}")

    def _handle_event(self, src: str,
                      payload: Dict[str, Any]) -> Dict[str, Any]:
        import json as _json

        event = MispEvent.from_dict(_json.loads(payload["document"]))
        group_raw = payload.get("sharing_group")
        if group_raw:
            group = SharingGroup.from_dict(group_raw)
            self.misp.sharing_groups.setdefault(group.uuid, group)
        # Inbound trust boundary: refuse markings more restrictive than
        # this org's acceptance ceiling (unmarked events fall back to the
        # policy's default marking — never treated as unrestricted).
        marking = self.policy.marking_of(event)
        if not Tlp.at_most(marking, self.accept_ceiling):
            return {"accepted": False, "reason": f"tlp:{marking} refused"}
        stored = self.misp.store.get_event(event.uuid) \
            if self.misp.store.has_event(event.uuid) else None
        if stored is not None:
            incoming_ts, held_ts = _epoch(event.timestamp), \
                _epoch(stored.timestamp)
            if payload.get("reconcile"):
                if not prefers_incoming(incoming_ts, event_digest(event),
                                        held_ts, event_digest(stored)):
                    return {"accepted": False, "reason": "stale"}
            elif held_ts >= incoming_ts:
                return {"accepted": False, "reason": "duplicate"}
        trace = payload.get("trace")
        self.misp.receive_event(event, trace_context=trace)
        path = list((trace or {}).get("path") or [])
        self.origins[event.uuid] = path[0] if path else src
        return {"accepted": True}

    def _handle_sighting(self, src: str,
                         payload: Dict[str, Any]) -> Dict[str, Any]:
        record = dict(payload)
        if record.get("origin") == self.name:
            self._apply_sighting(record)
            return {"accepted": True, "processed": True}
        self.pending_sightings.append(record)
        return {"accepted": True, "forwarded": True}

    # -- sightings loop -------------------------------------------------------

    def observe(self, eioc_uuid: str, value: str, infra_node: str,
                observed_at: Optional[_dt.datetime] = None
                ) -> Optional[RescoreOutcome]:
        """Report an in-infrastructure sighting of an eIoC's value.

        Locally-originated eIoCs re-score immediately; synced ones queue a
        sighting record routed hop-by-hop back to the origin org (retried
        by :meth:`flush_sightings` until the route is up).
        """
        if observed_at is None:
            observed_at = self.clock.now()
        origin = self.origins.get(eioc_uuid, self.name)
        record = {
            "eioc_uuid": eioc_uuid,
            "value": value,
            "node": infra_node,
            "observed_at": _epoch(observed_at),
            "origin": origin,
        }
        if origin == self.name:
            return self._apply_sighting(record)
        self.pending_sightings.append(record)
        self.flush_sightings()
        return None

    def flush_sightings(self) -> int:
        """Try to route every queued sighting one hop; returns deliveries."""
        still: List[Dict[str, Any]] = []
        delivered = 0
        for record in self.pending_sightings:
            hop = self.topology.next_hop(self.name, record["origin"])
            if hop is None:
                still.append(record)
                continue
            try:
                self.backbone.transmit(self.name, hop, KIND_SIGHTING, record)
                delivered += 1
            except SharingError:
                still.append(record)
        self.pending_sightings = still
        return delivered

    def _apply_sighting(self, record: Dict[str, Any]) -> RescoreOutcome:
        observed_at = _dt.datetime.fromtimestamp(
            int(record["observed_at"]), tz=_dt.timezone.utc)
        outcome = self.sightings.report(
            record["eioc_uuid"], record["value"], record["node"],
            observed_at=observed_at)
        self.rescores.append(outcome)
        return outcome

    # -- reconciliation -------------------------------------------------------

    def reconcile_with(self, dst: str) -> Dict[str, int]:
        """One anti-entropy exchange over the ``self`` → ``dst`` link."""
        from .antientropy import reconcile
        return reconcile(self, dst)

    # -- state ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """Full-state fingerprint (events, correlations, sync, lineage)."""
        return store_fingerprint(self.misp.store)

    def event_blob(self) -> str:
        """Event-content-only canonical blob."""
        return event_blob(self.misp.store)


class Federation:
    """N organisations wired over a topology, driven in deterministic rounds."""

    def __init__(self, topology: Topology, *,
                 backbone: Optional[Backbone] = None,
                 clock: Optional[Clock] = None,
                 workers: int = 2,
                 metrics: Optional[MetricsRegistry] = None,
                 node_options: Optional[Dict[str, Dict[str, Any]]] = None
                 ) -> None:
        self.topology = topology
        self.clock = clock or SimulatedClock(PAPER_NOW)
        self.backbone = backbone or InMemoryBackbone(metrics=metrics)
        options = node_options or {}
        self.nodes: Dict[str, FederationNode] = {
            org: FederationNode(org, self.backbone, topology, self.clock,
                                workers=workers, metrics=metrics,
                                **options.get(org, {}))
            for org in topology.orgs
        }
        for src, dst in topology.links:
            self.nodes[src].link_to(dst)

    def node(self, name: str) -> FederationNode:
        """One member org by name."""
        return self.nodes[name]

    def run_round(self, anti_entropy: bool = False
                  ) -> List[ShareCycleReport]:
        """One federation round: org-by-org sync cycle + sighting flush.

        Orgs run serially in topology declaration order — the determinism
        anchor that makes faulted runs replayable against the baseline.
        """
        reports = []
        for org in self.topology.orgs:
            node = self.nodes[org]
            reports.append(node.gateway.sync_cycle())
            node.flush_sightings()
        if anti_entropy:
            self.reconcile()
        return reports

    def run(self, rounds: int, anti_entropy: bool = False
            ) -> List[List[ShareCycleReport]]:
        """Drive several rounds; returns each round's reports."""
        return [self.run_round(anti_entropy=anti_entropy)
                for _ in range(rounds)]

    def reconcile(self) -> Dict[str, Dict[str, int]]:
        """One anti-entropy pass over every link (down links are skipped)."""
        results: Dict[str, Dict[str, int]] = {}
        for src, dst in self.topology.links:
            try:
                results[f"{src}->{dst}"] = self.nodes[src].reconcile_with(dst)
            except SharingError:
                results[f"{src}->{dst}"] = {"offered": 0, "wanted": 0,
                                            "repaired": 0, "link_down": 1}
        return results

    def replay_deadletters(self) -> Dict[str, int]:
        """Replay every org's share quarantine, in topology org order.

        Run this *before* post-heal sync rounds: replay then re-records the
        same ledger entries the baseline's ordinary cycles wrote, keeping
        sync-state fingerprints identical.
        """
        return {org: self.nodes[org].deadletters.replay(
                    gateway=self.nodes[org].gateway).shares_replayed
                for org in self.topology.orgs}

    def fingerprints(self) -> Dict[str, str]:
        """org -> full-state store fingerprint."""
        return {org: self.nodes[org].fingerprint()
                for org in self.topology.orgs}

    def event_blobs(self) -> Dict[str, str]:
        """org -> event-content-only canonical blob."""
        return {org: self.nodes[org].event_blob()
                for org in self.topology.orgs}

    def converged(self) -> bool:
        """Do all orgs hold identical *shareable* event content?

        Compares ALL_COMMUNITIES-visible content only: org-only events
        (sighting evidence) legitimately stay home.
        """
        import json as _json

        def shared_blob(node: FederationNode) -> str:
            released = []
            for event in node.misp.store.list_events():
                ok = all(node.misp.release_gate(event, other)[0]
                         for other in self.topology.orgs
                         if other != node.name)
                if ok:
                    released.append(
                        _json.dumps(event.to_dict(), sort_keys=True))
            return _json.dumps(sorted(released))

        blobs = {shared_blob(node) for node in self.nodes.values()}
        return len(blobs) == 1

    def bytes_by_org(self) -> Dict[str, int]:
        """org -> total payload bytes it pushed onto the backbone."""
        return {org: self.backbone.bytes_sent(org)
                for org in self.topology.orgs}
