"""Federation topologies: who links to whom, and how messages route.

A :class:`Topology` is a directed graph over organisation names.  The
constructors cover the shapes real CTI exchanges use:

- :func:`mesh` — every org links to every other (MISP communities);
- :func:`hub_and_spoke` — one hub relays between N spokes (DISINFOX-style
  hubs serving many heterogeneous consumers);
- :func:`chain` — the point-to-point relay the three-org harness used.

Routing is deterministic: :meth:`Topology.next_hop` runs a breadth-first
search that visits neighbours in declared link order, so the same topology
always routes a message over the same path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Topology:
    """A named directed link graph over organisation names."""

    orgs: Tuple[str, ...]
    links: Tuple[Tuple[str, str], ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if len(set(self.orgs)) != len(self.orgs):
            raise ConfigurationError("duplicate org names in topology")
        known = set(self.orgs)
        seen = set()
        for src, dst in self.links:
            if src not in known or dst not in known:
                raise ConfigurationError(
                    f"link {src!r}->{dst!r} references an unknown org")
            if src == dst:
                raise ConfigurationError(f"self-link on {src!r}")
            if (src, dst) in seen:
                raise ConfigurationError(f"duplicate link {src!r}->{dst!r}")
            seen.add((src, dst))

    def neighbors(self, org: str) -> List[str]:
        """Outbound link destinations of one org, in declared order."""
        return [dst for src, dst in self.links if src == org]

    def next_hop(self, src: str, dst: str) -> Optional[str]:
        """First hop of the deterministic shortest route ``src`` → ``dst``.

        BFS visiting neighbours in declared link order; ``None`` when no
        route exists (routing is a topology property — a *partitioned*
        link still routes, the transmit just fails until it heals).
        """
        if src == dst:
            return None
        first_hop: Dict[str, str] = {}
        frontier = [src]
        while frontier:
            nxt: List[str] = []
            for org in frontier:
                for neighbor in self.neighbors(org):
                    if neighbor == src or neighbor in first_hop:
                        continue
                    first_hop[neighbor] = first_hop.get(org, neighbor)
                    if neighbor == dst:
                        return first_hop[neighbor]
                    nxt.append(neighbor)
            frontier = nxt
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly description (CLI surface)."""
        return {"name": self.name, "orgs": list(self.orgs),
                "links": [list(link) for link in self.links]}


def mesh(orgs: Sequence[str]) -> Topology:
    """Full mesh: every org links to every other org, both directions."""
    orgs = tuple(orgs)
    links = tuple((src, dst) for src in orgs for dst in orgs if src != dst)
    return Topology(orgs=orgs, links=links, name="mesh")


def hub_and_spoke(hub: str, spokes: Sequence[str]) -> Topology:
    """Hub-and-spoke: the hub links to every spoke and back."""
    spokes = tuple(spokes)
    links: List[Tuple[str, str]] = []
    for spoke in spokes:
        links.append((hub, spoke))
        links.append((spoke, hub))
    return Topology(orgs=(hub,) + spokes, links=tuple(links),
                    name="hub-and-spoke")


def chain(orgs: Sequence[str]) -> Topology:
    """One-way relay chain: org[0] → org[1] → ... → org[n-1]."""
    orgs = tuple(orgs)
    links = tuple((orgs[i], orgs[i + 1]) for i in range(len(orgs) - 1))
    return Topology(orgs=orgs, links=links, name="chain")
