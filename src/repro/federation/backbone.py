"""The pluggable message fabric federation nodes transmit over.

A :class:`Backbone` carries typed messages (``event``, ``sighting``,
``digest-offer``) between connected organisations and accounts for every
directed link's traffic (``caop_federation_*`` metrics plus
:class:`LinkStats`).  Transports plug in by overriding :meth:`_check_link`:

- :class:`InMemoryBackbone` — perfect delivery (the unit-test fabric);
- :class:`SimulatedNetworkBackbone` — consults a
  :class:`~repro.resilience.FaultInjector`'s ``link`` seam, so scripted
  fault plans and imperative ``partition``/``heal``/``lossy`` calls drop
  messages deterministically.

Delivery is synchronous: ``transmit`` invokes the destination's handler and
returns its response dict, raising :class:`~repro.errors.SharingError` when
the link is down — the same retryable contract the sharing gateway's other
transports follow, so per-link circuit breakers, retry backoff and
dead-letter quarantine all compose unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SharingError
from ..obs import MetricsRegistry, NULL_REGISTRY

#: Message kinds a backbone carries.
KIND_EVENT = "event"
KIND_SIGHTING = "sighting"
KIND_DIGEST_OFFER = "digest-offer"

#: A node's message handler: (src_org, kind, payload) -> response dict.
Handler = Callable[[str, str, Dict[str, Any]], Dict[str, Any]]


@dataclass
class LinkStats:
    """Per-directed-link transport accounting."""

    messages: int = 0
    bytes: int = 0
    failures: int = 0


class Backbone:
    """Base transport: registration, delivery, accounting, link checks."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._handlers: "Dict[str, Handler]" = {}
        self._lock = threading.Lock()
        #: (src, dst) -> LinkStats for every link that ever transmitted.
        self.stats: Dict[Tuple[str, str], LinkStats] = {}
        registry = metrics or NULL_REGISTRY
        self._m_messages = registry.counter(
            "caop_federation_messages_total",
            "Messages delivered over federation links, by src/dst/kind")
        self._m_bytes = registry.counter(
            "caop_federation_bytes_total",
            "Payload bytes delivered over federation links, by src/dst")
        self._m_failures = registry.counter(
            "caop_federation_link_failures_total",
            "Transmit attempts dropped by a down federation link")
        self._m_link_up = registry.gauge(
            "caop_federation_link_up",
            "Last observed state of a federation link (1 up, 0 down)")

    def connect(self, org: str, handler: Handler) -> None:
        """Attach one organisation's message handler."""
        if org in self._handlers:
            raise SharingError(f"org {org!r} already connected to backbone")
        self._handlers[org] = handler

    @property
    def orgs(self) -> List[str]:
        """Connected organisations in connection order."""
        return list(self._handlers)

    def _check_link(self, src: str, dst: str) -> None:
        """Raise :class:`SharingError` when the link is down (transport hook)."""

    def transmit(self, src: str, dst: str, kind: str,
                 payload: Dict[str, Any]) -> Dict[str, Any]:
        """Deliver one message; returns the destination handler's response.

        Raises :class:`SharingError` (retryable) when the destination is
        unknown or the link is down; link failures are counted before the
        raise so chaos runs can assert on injected drop totals.
        """
        handler = self._handlers.get(dst)
        if handler is None:
            raise SharingError(f"no such federation org {dst!r}")
        size = len(json.dumps(payload, sort_keys=True, default=str))
        with self._lock:
            stats = self.stats.setdefault((src, dst), LinkStats())
        try:
            self._check_link(src, dst)
        except SharingError:
            with self._lock:
                stats.failures += 1
            self._m_failures.inc(src=src, dst=dst)
            self._m_link_up.set(0, src=src, dst=dst)
            raise
        response = handler(src, kind, payload) or {}
        with self._lock:
            stats.messages += 1
            stats.bytes += size
        self._m_messages.inc(src=src, dst=dst, kind=kind)
        self._m_bytes.inc(size, src=src, dst=dst)
        self._m_link_up.set(1, src=src, dst=dst)
        return response

    def bytes_sent(self, org: str) -> int:
        """Total payload bytes this org pushed onto the backbone."""
        with self._lock:
            return sum(stats.bytes for (src, _dst), stats
                       in self.stats.items() if src == org)

    def total_bytes(self) -> int:
        """Payload bytes delivered across every link."""
        with self._lock:
            return sum(stats.bytes for stats in self.stats.values())


class InMemoryBackbone(Backbone):
    """Perfect in-process delivery — every link is always up."""


class SimulatedNetworkBackbone(Backbone):
    """A lossy, partitionable network driven by the chaos harness.

    Every transmit consults the fault injector's ``link`` seam
    (:meth:`~repro.resilience.FaultInjector.check_link`), so scripted
    :class:`~repro.resilience.FaultPlan` rules over ``src->dst`` keys and
    imperative ``partition``/``heal``/``lossy`` calls decide which
    messages are dropped — deterministically, at any thread count.
    """

    def __init__(self, fault_injector,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(metrics=metrics)
        self.fault_injector = fault_injector

    def _check_link(self, src: str, dst: str) -> None:
        self.fault_injector.check_link(src, dst)
