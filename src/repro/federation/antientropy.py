"""Anti-entropy reconciliation: digest exchange that repairs divergence.

Delta sync is *optimistic*: each sender trusts its own ledger about what a
peer holds.  After partitions, crashes or conflicting concurrent edits,
that belief can drift from reality — the classic gossip fix is periodic
**anti-entropy**: replicas exchange content digests and repair exactly the
differences (Demers et al.; MISP communities run the same shape as full
server pulls).

The protocol over one directed link ``src`` → ``dst``:

1. ``src`` offers ``{uuid: {digest, ts}}`` for every event its release
   gate *and* TLP policy would let reach ``dst`` — digests computed on the
   wire copy (post hop-downgrade), i.e. what ``dst`` would actually store;
2. ``dst`` answers with the uuids it wants: unknown events, plus held
   copies the deterministic :func:`~repro.federation.prefers_incoming`
   rule says should be replaced (newer timestamp, or digest tiebreak on a
   timestamp tie — so two divergent replicas converge onto one survivor);
3. ``src`` pushes each wanted event as a normal backbone event message
   flagged ``reconcile`` (which bypasses the receiver's duplicate gate in
   favour of the same preference rule) and records ledger success with
   the event's canonical digest — exactly what an ordinary sync cycle
   would have written, so a repaired run's sync state still matches the
   fault-free baseline's.

A healthy link offers everything and repairs nothing: the exchange is a
pure read (one offer message) and leaves no new state behind.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..misp.export import to_misp_json
from ..obs import share_context
from ..sharing.sync import event_digest
from ..sharing.policy import Tlp
from .backbone import KIND_DIGEST_OFFER, KIND_EVENT

if TYPE_CHECKING:  # pragma: no cover
    from .node import FederationNode


def _epoch(stamp: Optional[_dt.datetime]) -> int:
    return int(stamp.timestamp()) if stamp is not None else 0


def _releasable(node: "FederationNode", event, dst: str):
    """(wire_copy, group) when the event may reach ``dst``; None otherwise.

    Mirrors the outbound path's two gates — MISP distribution and TLP
    policy — without touching the policy's refusal counters (this is a
    read-only probe, not a share attempt).
    """
    ok, group, _reason = node.misp.release_gate(event, dst)
    if not ok:
        return None
    marking = node.policy.marking_of(event)
    if marking == Tlp.RED or not Tlp.at_most(
            marking, node.policy.clearance_of(dst)):
        return None
    return node.misp.release_copy(event), group


def build_offer(node: "FederationNode", dst: str) -> Dict[str, Dict[str, Any]]:
    """The digest offer ``src`` advertises to ``dst``, uuid-sorted."""
    offer: Dict[str, Dict[str, Any]] = {}
    for event in sorted(node.misp.store.list_events(),
                        key=lambda e: e.uuid or ""):
        released = _releasable(node, event, dst)
        if released is None:
            continue
        copy, _group = released
        offer[event.uuid] = {
            "digest": event_digest(copy),
            "ts": _epoch(copy.timestamp),
        }
    return offer


def handle_offer(node: "FederationNode", src: str,
                 payload: Dict[str, Any]) -> Dict[str, Any]:
    """The receiver half: decide which offered uuids to request."""
    want: List[str] = []
    from .node import prefers_incoming

    for uuid in sorted(payload.get("offer", {})):
        meta = payload["offer"][uuid]
        stored = node.misp.store.get_event(uuid) \
            if node.misp.store.has_event(uuid) else None
        if stored is None:
            want.append(uuid)
            continue
        if prefers_incoming(int(meta["ts"]), meta["digest"],
                            _epoch(stored.timestamp), event_digest(stored)):
            want.append(uuid)
    return {"want": want}


def reconcile(node: "FederationNode", dst: str) -> Dict[str, int]:
    """One full anti-entropy exchange over the ``node`` → ``dst`` link.

    Raises :class:`~repro.errors.SharingError` when the link is down (the
    offer itself fails) — callers treat that like any other transient
    transport fault and retry next round.
    """
    offer = build_offer(node, dst)
    response = node.backbone.transmit(
        node.name, dst, KIND_DIGEST_OFFER, {"offer": offer})
    wanted = list(response.get("want", ()))
    repaired = 0
    for uuid in wanted:
        event = node.misp.store.get_event(uuid)
        if event is None:
            continue
        released = _releasable(node, event, dst)
        if released is None:
            continue
        copy, group = released
        message: Dict[str, Any] = {
            "document": to_misp_json(copy),
            "reconcile": True,
        }
        if group is not None:
            message["sharing_group"] = group.to_dict()
        if node.provenance.enabled:
            message["trace"] = share_context(
                node.misp.store, uuid, node.name)
        result = node.backbone.transmit(node.name, dst, KIND_EVENT, message)
        if result.get("accepted"):
            repaired += 1
            # The same ledger entry an ordinary successful sync writes:
            # the canonical digest of the *local* event.
            node.gateway.ledger.record_success(dst, event)
            if node.provenance.enabled:
                node.provenance.record(
                    "shared-to", uuid, actor="anti-entropy",
                    detail=f"entity={dst} transport=backbone")
                node.provenance.flush()
    return {"offered": len(offer), "wanted": len(wanted),
            "repaired": repaired}
