"""MISP data model: events, attributes, objects, tags.

A faithful subset of the MISP format (https://www.misp-project.org/datamodels/):
an *event* is the envelope for one incident/report; *attributes* are its
typed indicators; *objects* group related attributes; *tags* annotate both.
The platform stores every cIoC as a MISP event, adds the threat score as a
new attribute during enrichment (§IV-A), and exports in MISP JSON or STIX.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..clock import PAPER_NOW, ensure_utc, format_timestamp, parse_timestamp
from ..errors import ValidationError
from ..ids import IdGenerator


class Distribution:
    """MISP distribution levels controlling how far an event may travel."""

    ORGANISATION_ONLY = 0
    COMMUNITY_ONLY = 1
    CONNECTED_COMMUNITIES = 2
    ALL_COMMUNITIES = 3
    SHARING_GROUP = 4

    ALL = (0, 1, 2, 3, 4)


class ThreatLevel:
    """MISP event threat levels."""

    HIGH = 1
    MEDIUM = 2
    LOW = 3
    UNDEFINED = 4

    ALL = (1, 2, 3, 4)


class Analysis:
    """MISP analysis maturity levels."""

    INITIAL = 0
    ONGOING = 1
    COMPLETE = 2

    ALL = (0, 1, 2)


#: MISP attribute types used by the platform, with their default category.
ATTRIBUTE_TYPES: Mapping[str, str] = {
    "ip-src": "Network activity",
    "ip-dst": "Network activity",
    "domain": "Network activity",
    "hostname": "Network activity",
    "url": "Network activity",
    "md5": "Payload delivery",
    "sha1": "Payload delivery",
    "sha256": "Payload delivery",
    "filename": "Payload delivery",
    "email-src": "Payload delivery",
    "vulnerability": "External analysis",
    "link": "External analysis",
    "text": "Other",
    "comment": "Other",
    "float": "Other",
    "datetime": "Other",
}

#: Attribute types that participate in value correlation (MISP disables
#: correlation for free-text/comment types).
CORRELATABLE_TYPES = frozenset(
    t for t in ATTRIBUTE_TYPES
    if t not in ("comment", "text", "float", "datetime")
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


@dataclass
class MispTag:
    """A tag in MISP's ``namespace:predicate="value"`` style (or plain)."""

    name: str
    colour: str = "#0088cc"

    def __post_init__(self) -> None:
        _require(bool(self.name), "tag name must not be empty")

    def to_dict(self) -> Dict[str, str]:
        """Serialize to a JSON-ready dict."""
        return {"name": self.name, "colour": self.colour}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MispTag":
        """Revive an instance from its dict form."""
        return cls(name=data.get("name", ""), colour=data.get("colour", "#0088cc"))


@dataclass
class MispAttribute:
    """One typed indicator inside an event."""

    type: str
    value: str
    category: Optional[str] = None
    uuid: Optional[str] = None
    to_ids: bool = True
    comment: str = ""
    timestamp: Optional[_dt.datetime] = None
    distribution: int = Distribution.CONNECTED_COMMUNITIES
    tags: List[MispTag] = field(default_factory=list)
    object_relation: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.type in ATTRIBUTE_TYPES, f"unknown attribute type {self.type!r}")
        _require(bool(self.value), "attribute value must not be empty")
        _require(self.distribution in Distribution.ALL,
                 f"invalid distribution {self.distribution}")
        if self.category is None:
            self.category = ATTRIBUTE_TYPES[self.type]
        if self.uuid is None:
            self.uuid = IdGenerator().uuid()
        if self.timestamp is None:
            self.timestamp = PAPER_NOW
        else:
            self.timestamp = ensure_utc(self.timestamp)

    @property
    def correlatable(self) -> bool:
        """Whether this attribute participates in value correlation."""
        return self.type in CORRELATABLE_TYPES and self.to_ids

    def add_tag(self, name: str) -> None:
        """Attach a tag once (idempotent)."""
        if all(tag.name != name for tag in self.tags):
            self.tags.append(MispTag(name=name))

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-ready dict."""
        data: Dict[str, Any] = {
            "uuid": self.uuid,
            "type": self.type,
            "category": self.category,
            "value": self.value,
            "to_ids": self.to_ids,
            "comment": self.comment,
            "timestamp": str(int(ensure_utc(self.timestamp).timestamp())),
            "distribution": str(self.distribution),
        }
        if self.object_relation:
            data["object_relation"] = self.object_relation
        if self.tags:
            data["Tag"] = [tag.to_dict() for tag in self.tags]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MispAttribute":
        """Revive an instance from its dict form."""
        timestamp = None
        raw_ts = data.get("timestamp")
        if raw_ts is not None:
            timestamp = _dt.datetime.fromtimestamp(int(raw_ts), tz=_dt.timezone.utc)
        return cls(
            type=data.get("type", ""),
            value=data.get("value", ""),
            category=data.get("category"),
            uuid=data.get("uuid"),
            to_ids=bool(data.get("to_ids", True)),
            comment=data.get("comment", ""),
            timestamp=timestamp,
            distribution=int(data.get("distribution", Distribution.CONNECTED_COMMUNITIES)),
            tags=[MispTag.from_dict(t) for t in data.get("Tag", [])],
            object_relation=data.get("object_relation"),
        )


@dataclass
class MispObject:
    """A named group of attributes (MISP object template instance)."""

    name: str
    uuid: Optional[str] = None
    description: str = ""
    attributes: List[MispAttribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        _require(bool(self.name), "object name must not be empty")
        if self.uuid is None:
            self.uuid = IdGenerator().uuid()

    def add_attribute(self, attribute: MispAttribute, relation: str) -> None:
        """Append an attribute."""
        attribute.object_relation = relation
        self.attributes.append(attribute)

    def get(self, relation: str) -> Optional[MispAttribute]:
        """Look up an entry by key; None when absent."""
        for attribute in self.attributes:
            if attribute.object_relation == relation:
                return attribute
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-ready dict."""
        return {
            "uuid": self.uuid,
            "name": self.name,
            "description": self.description,
            "Attribute": [a.to_dict() for a in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MispObject":
        """Revive an instance from its dict form."""
        return cls(
            name=data.get("name", ""),
            uuid=data.get("uuid"),
            description=data.get("description", ""),
            attributes=[MispAttribute.from_dict(a) for a in data.get("Attribute", [])],
        )


@dataclass
class MispEvent:
    """The MISP event envelope: one incident/report with its indicators."""

    info: str
    uuid: Optional[str] = None
    date: Optional[_dt.date] = None
    org: str = "CAOP"
    orgc: Optional[str] = None
    threat_level_id: int = ThreatLevel.UNDEFINED
    analysis: int = Analysis.INITIAL
    distribution: int = Distribution.CONNECTED_COMMUNITIES
    published: bool = False
    timestamp: Optional[_dt.datetime] = None
    attributes: List[MispAttribute] = field(default_factory=list)
    objects: List[MispObject] = field(default_factory=list)
    tags: List[MispTag] = field(default_factory=list)
    #: Required when distribution == Distribution.SHARING_GROUP.
    sharing_group_id: Optional[str] = None

    def __post_init__(self) -> None:
        _require(bool(self.info), "event info must not be empty")
        _require(self.threat_level_id in ThreatLevel.ALL,
                 f"invalid threat level {self.threat_level_id}")
        _require(self.analysis in Analysis.ALL, f"invalid analysis {self.analysis}")
        _require(self.distribution in Distribution.ALL,
                 f"invalid distribution {self.distribution}")
        if self.distribution == Distribution.SHARING_GROUP:
            _require(self.sharing_group_id is not None,
                     "sharing-group distribution requires a sharing_group_id")
        if self.uuid is None:
            self.uuid = IdGenerator().uuid()
        if self.timestamp is None:
            self.timestamp = PAPER_NOW
        else:
            self.timestamp = ensure_utc(self.timestamp)
        if self.date is None:
            self.date = self.timestamp.date()
        if self.orgc is None:
            self.orgc = self.org

    # -- content helpers -----------------------------------------------------

    def add_attribute(self, attribute: MispAttribute) -> MispAttribute:
        """Append an attribute."""
        self.attributes.append(attribute)
        return attribute

    def add_tag(self, name: str) -> None:
        """Attach a tag once (idempotent)."""
        if all(tag.name != name for tag in self.tags):
            self.tags.append(MispTag(name=name))

    def has_tag(self, name: str) -> bool:
        """Whether a tag with this name is present."""
        return any(tag.name == name for tag in self.tags)

    def all_attributes(self) -> List[MispAttribute]:
        """Top-level attributes plus every object attribute."""
        out = list(self.attributes)
        for obj in self.objects:
            out.extend(obj.attributes)
        return out

    def attributes_of_type(self, attribute_type: str) -> List[MispAttribute]:
        """All attributes (incl. object ones) of a type."""
        return [a for a in self.all_attributes() if a.type == attribute_type]

    def get_attribute(self, attribute_type: str) -> Optional[MispAttribute]:
        """First attribute of a type, or None."""
        found = self.attributes_of_type(attribute_type)
        return found[0] if found else None

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialize in the (nested) MISP JSON event format."""
        return {
            "Event": {
                "uuid": self.uuid,
                "info": self.info,
                "date": self.date.isoformat(),
                "Org": {"name": self.org},
                "Orgc": {"name": self.orgc},
                "threat_level_id": str(self.threat_level_id),
                "analysis": str(self.analysis),
                "distribution": str(self.distribution),
                "published": self.published,
                "timestamp": str(int(ensure_utc(self.timestamp).timestamp())),
                **({"sharing_group_id": self.sharing_group_id}
                   if self.sharing_group_id is not None else {}),
                "Attribute": [a.to_dict() for a in self.attributes],
                "Object": [o.to_dict() for o in self.objects],
                "Tag": [t.to_dict() for t in self.tags],
            }
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MispEvent":
        """Revive an instance from its dict form."""
        body = data.get("Event", data)
        raw_ts = body.get("timestamp")
        timestamp = None
        if raw_ts is not None:
            timestamp = _dt.datetime.fromtimestamp(int(raw_ts), tz=_dt.timezone.utc)
        date = None
        if body.get("date"):
            date = _dt.date.fromisoformat(body["date"])
        return cls(
            info=body.get("info", ""),
            uuid=body.get("uuid"),
            date=date,
            org=(body.get("Org") or {}).get("name", "CAOP"),
            orgc=(body.get("Orgc") or {}).get("name"),
            threat_level_id=int(body.get("threat_level_id", ThreatLevel.UNDEFINED)),
            analysis=int(body.get("analysis", Analysis.INITIAL)),
            distribution=int(body.get("distribution", Distribution.CONNECTED_COMMUNITIES)),
            published=bool(body.get("published", False)),
            timestamp=timestamp,
            attributes=[MispAttribute.from_dict(a) for a in body.get("Attribute", [])],
            objects=[MispObject.from_dict(o) for o in body.get("Object", [])],
            tags=[MispTag.from_dict(t) for t in body.get("Tag", [])],
            sharing_group_id=body.get("sharing_group_id"),
        )
