"""Warninglists: known-benign values that would cause false positives.

MISP ships the *misp-warninglists* project for exactly the problem the
paper worries about ("the issue of false alarms", §II-A): OSINT feeds
routinely contain RFC1918 addresses, well-known public resolvers, or
top-site domains that must never become blocking indicators.

A :class:`Warninglist` matches values by exact entry, CIDR containment or
domain suffix; the :class:`WarninglistIndex` aggregates the built-in lists
and answers "is this value known-benign, and per which list?".
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ValidationError


@dataclass(frozen=True)
class WarninglistHit:
    """Why a value was flagged as known-benign."""

    list_name: str
    entry: str
    value: str


class Warninglist:
    """One named list of known-benign entries.

    ``match_type``:

    - ``exact``  — case-insensitive string equality;
    - ``cidr``   — entries are networks, values are IPs (containment);
    - ``suffix`` — entries are domain suffixes (``example.com`` matches
      ``a.b.example.com`` and ``example.com`` itself).
    """

    MATCH_TYPES = ("exact", "cidr", "suffix")

    def __init__(self, name: str, entries: Iterable[str],
                 match_type: str = "exact", description: str = "") -> None:
        if not name:
            raise ValidationError("warninglist needs a name")
        if match_type not in self.MATCH_TYPES:
            raise ValidationError(f"unknown match type {match_type!r}")
        self.name = name
        self.match_type = match_type
        self.description = description
        self._entries = [entry.strip().lower() for entry in entries if entry.strip()]
        if not self._entries:
            raise ValidationError(f"warninglist {name!r} has no entries")
        if match_type == "cidr":
            self._networks = [ipaddress.ip_network(e, strict=False)
                              for e in self._entries]

    @property
    def entries(self) -> List[str]:
        """The normalized list entries."""
        return list(self._entries)

    def match(self, value: str) -> Optional[WarninglistHit]:
        """Return the hit when ``value`` is on this list."""
        needle = value.strip().lower()
        if not needle:
            return None
        if self.match_type == "exact":
            if needle in self._entries:
                return WarninglistHit(self.name, needle, value)
            return None
        if self.match_type == "cidr":
            try:
                address = ipaddress.ip_address(needle)
            except ValueError:
                return None
            for entry, network in zip(self._entries, self._networks):
                if address in network:
                    return WarninglistHit(self.name, entry, value)
            return None
        # suffix
        for entry in self._entries:
            if needle == entry or needle.endswith("." + entry):
                return WarninglistHit(self.name, entry, value)
        return None


#: Built-in lists, condensed transcriptions of the real misp-warninglists.
def builtin_warninglists() -> List[Warninglist]:
    """The built-in known-benign lists."""
    return [
        Warninglist(
            name="rfc1918-private-ranges",
            description="RFC1918 / loopback / link-local ranges",
            match_type="cidr",
            entries=["10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16",
                     "127.0.0.0/8", "169.254.0.0/16"],
        ),
        Warninglist(
            name="public-dns-resolvers",
            description="well-known public DNS resolver addresses",
            match_type="exact",
            entries=["8.8.8.8", "8.8.4.4", "1.1.1.1", "1.0.0.1",
                     "9.9.9.9", "208.67.222.222"],
        ),
        Warninglist(
            name="top-sites",
            description="domains of major internet properties",
            match_type="suffix",
            entries=["google.com", "microsoft.com", "apple.com",
                     "amazon.com", "cloudflare.com", "akamai.net",
                     "windowsupdate.com", "github.com"],
        ),
        Warninglist(
            name="empty-hashes",
            description="hashes of the empty file / common placeholders",
            match_type="exact",
            entries=[
                "d41d8cd98f00b204e9800998ecf8427e",                       # md5("")
                "da39a3ee5e6b4b0d3255bfef95601890afd80709",               # sha1("")
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
                "7852b855",                                               # sha256("")
            ],
        ),
    ]


class WarninglistIndex:
    """All active warninglists; the collector consults this per indicator."""

    def __init__(self, lists: Optional[Iterable[Warninglist]] = None) -> None:
        self._lists: List[Warninglist] = list(
            builtin_warninglists() if lists is None else lists)
        self.hits: List[WarninglistHit] = []

    def add(self, warninglist: Warninglist) -> None:
        """Add one entry."""
        if any(w.name == warninglist.name for w in self._lists):
            raise ValidationError(
                f"warninglist {warninglist.name!r} already registered")
        self._lists.append(warninglist)

    @property
    def list_names(self) -> List[str]:
        """Names of the active warninglists."""
        return [w.name for w in self._lists]

    def check(self, value: str) -> Optional[WarninglistHit]:
        """First matching list wins; hits are recorded for reporting."""
        for warninglist in self._lists:
            hit = warninglist.match(value)
            if hit is not None:
                self.hits.append(hit)
                return hit
        return None

    def is_benign(self, value: str) -> bool:
        """Whether a value is on any warninglist."""
        return self.check(value) is not None
