"""PyMISP-like client façade.

§IV-A: "A specific open source library, written in Python, called PyMISP,
exists to interact directly with the MISP platform."  This client mirrors
the PyMISP call surface the collectors use (``add_event``, ``get_event``,
``search``, ``add_attribute``, ``tag``, ``publish``) so integration code
reads like real PyMISP code while talking to the in-process instance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import StorageError
from .instance import MispInstance
from .model import MispAttribute, MispEvent


class PyMispClient:
    """Thin API client over a :class:`MispInstance` endpoint."""

    def __init__(self, instance: MispInstance, api_key: str = "caop-local") -> None:
        self._instance = instance
        self._api_key = api_key

    # PyMISP returns dicts; this client returns the typed objects plus
    # ``*_dict`` variants where raw JSON is wanted.

    def add_event(self, event: MispEvent) -> MispEvent:
        """Store a new event."""
        return self._instance.add_event(event)

    def get_event(self, event_uuid: str) -> MispEvent:
        """Fetch one event by uuid."""
        event = self._instance.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        return event

    def get_event_dict(self, event_uuid: str) -> Dict[str, Any]:
        """Fetch one event as its MISP JSON dict."""
        return self.get_event(event_uuid).to_dict()

    def event_exists(self, event_uuid: str) -> bool:
        """Whether the event uuid is stored."""
        return self._instance.store.has_event(event_uuid)

    def add_attribute(self, event_uuid: str, attribute: MispAttribute) -> MispEvent:
        """Append an attribute."""
        return self._instance.add_attribute(event_uuid, attribute)

    def tag(self, event_uuid: str, tag_name: str) -> MispEvent:
        """Add a tag to a stored event."""
        return self._instance.tag_event(event_uuid, tag_name)

    def publish(self, event_uuid: str) -> MispEvent:
        """Publish an event (triggering peer sync)."""
        return self._instance.publish_event(event_uuid)

    def search(self, value: Optional[str] = None, tag: Optional[str] = None,
               type_attribute: Optional[str] = None,
               eventinfo: Optional[str] = None) -> List[MispEvent]:
        """Search with PyMISP-style keyword arguments."""
        return self._instance.store.search_events(
            info_substring=eventinfo, tag=tag,
            attribute_type=type_attribute, value=value,
        )

    def export(self, event_uuid: str, export_format: str = "misp-json") -> str:
        """Render a stored event in an export format."""
        return self._instance.export_event(event_uuid, export_format)
