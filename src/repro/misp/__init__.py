"""MISP substrate: events, store, correlation, export modules, sync, client."""

from .client import PyMispClient
from .export import (
    EXPORT_MODULES,
    from_misp_json,
    from_stix2_bundle,
    to_csv,
    to_misp_json,
    to_plaintext_values,
    to_stix1_xml,
    to_stix2_bundle,
)
from .galaxy import (
    BUILTIN_GALAXIES,
    Galaxy,
    GalaxyCluster,
    GalaxyMatcher,
    THREAT_ACTOR_GALAXY,
    TOOL_GALAXY,
    clusters_of,
)
from .instance import TOPIC_ATTRIBUTE, TOPIC_EVENT, MispInstance, SyncStats
from .sharing_groups import SharingGroup
from .model import (
    ATTRIBUTE_TYPES,
    CORRELATABLE_TYPES,
    Analysis,
    Distribution,
    MispAttribute,
    MispEvent,
    MispObject,
    MispTag,
    ThreatLevel,
)
from .storage import (
    InMemoryBackend,
    SQLiteBackend,
    ShardedSQLiteBackend,
    StorageBackend,
    shard_of,
)
from .store import MispStore, StoreChange
from .warninglists import (
    Warninglist,
    WarninglistHit,
    WarninglistIndex,
    builtin_warninglists,
)
from .taxonomy import (
    BUILTIN_TAXONOMIES,
    MachineTag,
    Taxonomy,
    TaxonomyPredicate,
    TaxonomyRegistry,
    parse_machine_tag,
)

__all__ = [
    "PyMispClient",
    "EXPORT_MODULES",
    "from_misp_json",
    "from_stix2_bundle",
    "to_csv",
    "to_misp_json",
    "to_plaintext_values",
    "to_stix1_xml",
    "to_stix2_bundle",
    "TOPIC_ATTRIBUTE",
    "TOPIC_EVENT",
    "MispInstance",
    "BUILTIN_GALAXIES",
    "Galaxy",
    "GalaxyCluster",
    "GalaxyMatcher",
    "THREAT_ACTOR_GALAXY",
    "TOOL_GALAXY",
    "clusters_of",
    "SharingGroup",
    "SyncStats",
    "ATTRIBUTE_TYPES",
    "CORRELATABLE_TYPES",
    "Analysis",
    "Distribution",
    "MispAttribute",
    "MispEvent",
    "MispObject",
    "MispTag",
    "ThreatLevel",
    "InMemoryBackend",
    "MispStore",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "StorageBackend",
    "StoreChange",
    "shard_of",
    "Warninglist",
    "WarninglistHit",
    "WarninglistIndex",
    "builtin_warninglists",
    "BUILTIN_TAXONOMIES",
    "MachineTag",
    "Taxonomy",
    "TaxonomyPredicate",
    "TaxonomyRegistry",
    "parse_machine_tag",
]
