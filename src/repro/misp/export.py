"""MISP export/import modules.

"thanks to specific export modules, they can be retrieved in various formats
(e.g., MISP JSON, STIX 1.x and STIX 2.x)" (§III-B1).  Implemented:

- MISP JSON (lossless, the storage format);
- STIX 2.0 bundle (the heuristic component's working format);
- a STIX 1.x-flavoured XML rendering (legacy consumers);
- CSV and plaintext value exports (SIEM-friendly).

The STIX 2.0 exporter maps attribute types onto indicator patterns and the
event's CVE attributes onto ``vulnerability`` SDOs — the two object kinds the
scoring heuristics consume.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional
from xml.sax.saxutils import escape

from ..clock import format_timestamp
from ..errors import ParseError
from ..ids import content_stix_id
from ..stix import (
    Bundle,
    ExternalReference,
    Indicator,
    StixObject,
    Vulnerability,
    equals_pattern,
)
from .model import MispAttribute, MispEvent

#: MISP attribute type -> STIX cyber-observable object path.
_TYPE_TO_OBJECT_PATH: Mapping[str, str] = {
    "ip-src": "ipv4-addr:value",
    "ip-dst": "ipv4-addr:value",
    "domain": "domain-name:value",
    "hostname": "domain-name:value",
    "url": "url:value",
    "md5": "file:hashes.MD5",
    "sha1": "file:hashes.'SHA-1'",
    "sha256": "file:hashes.'SHA-256'",
    "filename": "file:name",
    "email-src": "email-addr:value",
}


def to_misp_json(event: MispEvent, indent: Optional[int] = None) -> str:
    """Lossless MISP JSON export."""
    return json.dumps(event.to_dict(), indent=indent, sort_keys=False)


def from_misp_json(text: str) -> MispEvent:
    """Parse a MISP JSON document into an event."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid MISP JSON: {exc}") from exc
    return MispEvent.from_dict(data)


_CAPEC_RE = re.compile(r"\bCAPEC-\d+\b", re.IGNORECASE)


def _event_reference_attributes(event: MispEvent) -> List[ExternalReference]:
    """CAPEC/link references carried on sibling attributes of the event."""
    references: List[ExternalReference] = []
    for attribute in event.all_attributes():
        if attribute.type == "link":
            match = _CAPEC_RE.search(attribute.value)
            if match:
                references.append(ExternalReference(
                    source_name="capec", external_id=match.group().upper()))
            else:
                references.append(ExternalReference(
                    source_name="external", url=attribute.value))
        elif attribute.type == "text":
            match = _CAPEC_RE.search(attribute.value)
            if match:
                references.append(ExternalReference(
                    source_name="capec", external_id=match.group().upper()))
    return references


def attribute_to_stix(attribute: MispAttribute, event: MispEvent) -> Optional[StixObject]:
    """Convert one MISP attribute to its STIX 2.0 object, if representable."""
    created = format_timestamp(attribute.timestamp)
    labels = [tag.name for tag in attribute.tags] or ["malicious-activity"]
    if attribute.type == "vulnerability":
        references = [ExternalReference(source_name="cve",
                                        external_id=attribute.value)]
        references.extend(_event_reference_attributes(event))
        return Vulnerability(
            id=content_stix_id("vulnerability", attribute.value),
            name=attribute.value,
            description=attribute.comment or event.info,
            external_references=references,
            created=created,
            modified=created,
        )
    object_path = _TYPE_TO_OBJECT_PATH.get(attribute.type)
    if object_path is None:
        return None
    return Indicator(
        id=content_stix_id("indicator", attribute.type, attribute.value),
        name=f"{attribute.type}: {attribute.value}"[:120],
        description=attribute.comment or event.info,
        pattern=equals_pattern(object_path, attribute.value),
        valid_from=created,
        labels=labels,
        created=created,
        modified=created,
    )


def to_stix2_bundle(event: MispEvent) -> Bundle:
    """Export an event as a STIX 2.0 bundle.

    Custom event context (threat score, category tags) rides on each object
    as ``x_caop_*`` properties so the heuristic component can read it
    without a side channel.  A ``tlp:*`` tag on the event becomes the
    spec-fixed TLP marking-definition reference on every exported object.
    """
    from ..stix.markings import TLP_MARKING_IDS, marking_ref_for

    bundle = Bundle(bundle_id=f"bundle--{event.uuid}")
    customs: Dict[str, Any] = {
        "x_caop_event_uuid": event.uuid,
        "x_caop_event_info": event.info,
        "x_caop_tags": [tag.name for tag in event.tags],
    }
    marking_refs: List[str] = []
    for tag in event.tags:
        if tag.name.startswith("tlp:"):
            level = tag.name[4:].lower()
            if level in TLP_MARKING_IDS:
                marking_refs = [marking_ref_for(level)]
                break
    for attribute in event.all_attributes():
        obj = attribute_to_stix(attribute, event)
        if obj is None:
            continue
        data = obj.to_dict()
        data.update(customs)
        data["x_caop_attribute_uuid"] = attribute.uuid
        if marking_refs:
            data["object_marking_refs"] = marking_refs
        bundle.add(type(obj)(**data))
    # Knit the graph: every indicator in the event relates to the event's
    # vulnerability objects, so STIX consumers see one connected story
    # instead of loose objects.
    from ..stix import Relationship

    vulnerabilities = bundle.by_type("vulnerability")
    indicators = bundle.by_type("indicator")
    for vulnerability in vulnerabilities:
        for indicator in indicators:
            created = indicator["created"]
            rel_data = {
                "id": content_stix_id("relationship", indicator["id"],
                                      vulnerability["id"]),
                "relationship_type": "related-to",
                "source_ref": indicator["id"],
                "target_ref": vulnerability["id"],
                "created": format_timestamp(created),
                "modified": format_timestamp(created),
                **customs,
            }
            if marking_refs:
                rel_data["object_marking_refs"] = marking_refs
            bundle.add(Relationship(**rel_data))
    return bundle


def from_stix2_bundle(bundle: Bundle, info: Optional[str] = None) -> MispEvent:
    """Import a STIX 2.0 bundle as a MISP event (indicators + vulnerabilities).

    TLP marking references on the objects are recovered as a ``tlp:*`` tag.
    """
    from ..stix.markings import tlp_from_marking_refs

    event = MispEvent(info=info or f"Imported STIX bundle {bundle.id}")
    for obj in bundle:
        level = tlp_from_marking_refs(obj.get("object_marking_refs"))
        if level is not None and not any(
                tag.name.startswith("tlp:") for tag in event.tags):
            event.add_tag(f"tlp:{level}")
        if obj["type"] == "vulnerability":
            event.add_attribute(MispAttribute(
                type="vulnerability", value=obj["name"],
                comment=obj.get("description", ""),
            ))
        elif obj["type"] == "indicator":
            attribute = _indicator_to_attribute(obj)
            if attribute is not None:
                event.add_attribute(attribute)
    return event


def _indicator_to_attribute(indicator: StixObject) -> Optional[MispAttribute]:
    from ..stix.pattern import CompiledPattern

    try:
        comparisons = CompiledPattern(indicator["pattern"]).comparisons()
    except Exception:
        return None
    # First declaration wins so 'domain' round-trips as 'domain', not the
    # later 'hostname' alias of the same object path.  Both sides are
    # canonicalized through the pattern parser so quoting differences
    # (hashes.MD5 vs hashes.'MD5') cannot break the lookup.
    reverse: Dict[str, str] = {}
    for misp_type, object_path in _TYPE_TO_OBJECT_PATH.items():
        canonical = str(CompiledPattern(f"[{object_path} = 'x']").comparisons()[0].path)
        reverse.setdefault(canonical, misp_type)
    for comparison in comparisons:
        path = str(comparison.path)
        misp_type = reverse.get(path)
        if misp_type is not None and comparison.operator == "=":
            return MispAttribute(
                type=misp_type, value=str(comparison.value),
                comment=indicator.get("description", ""),
            )
    return None


def to_stix1_xml(event: MispEvent) -> str:
    """A STIX 1.x-flavoured XML export for legacy consumers.

    Structure (STIX_Package / Indicators / Observable) follows STIX 1.2
    conventions closely enough for XML-consuming SIEM connectors; it is a
    one-way export.
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<stix:STIX_Package id="caop:package-{event.uuid}" version="1.2">',
        f"  <stix:STIX_Header><stix:Title>{escape(event.info)}</stix:Title></stix:STIX_Header>",
        "  <stix:Indicators>",
    ]
    for attribute in event.all_attributes():
        lines.append(f'    <stix:Indicator id="caop:indicator-{attribute.uuid}">')
        lines.append(f"      <indicator:Type>{escape(attribute.type)}</indicator:Type>")
        lines.append("      <indicator:Observable>")
        lines.append(
            f"        <cybox:Value>{escape(attribute.value)}</cybox:Value>")
        lines.append("      </indicator:Observable>")
        lines.append("    </stix:Indicator>")
    lines.append("  </stix:Indicators>")
    lines.append("</stix:STIX_Package>")
    return "\n".join(lines)


def to_csv(event: MispEvent) -> str:
    """CSV export: uuid,type,category,value,to_ids,comment."""
    rows = ["uuid,type,category,value,to_ids,comment"]
    for attribute in event.all_attributes():
        comment = attribute.comment.replace('"', '""')
        rows.append(
            f'{attribute.uuid},{attribute.type},{attribute.category},'
            f'"{attribute.value}",{int(attribute.to_ids)},"{comment}"')
    return "\n".join(rows) + "\n"


def to_plaintext_values(event: MispEvent,
                        attribute_type: Optional[str] = None) -> str:
    """One attribute value per line (blocklist-style export)."""
    values = [
        attribute.value for attribute in event.all_attributes()
        if attribute_type is None or attribute.type == attribute_type
    ]
    return "\n".join(values) + ("\n" if values else "")


#: Export format name -> callable, the instance's export-module registry.
EXPORT_MODULES = {
    "misp-json": to_misp_json,
    "stix2": lambda event: to_stix2_bundle(event).to_json(),
    "stix1-xml": to_stix1_xml,
    "csv": to_csv,
    "plaintext": to_plaintext_values,
}
