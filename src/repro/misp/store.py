"""SQLite-backed relational store for MISP events.

The paper's operational module keeps "a relational database to store locally
information about IoCs and the monitored infrastructure" (§III-B1).  Events
are stored both relationally (events/attributes/tags rows for querying and
correlation) and as their canonical MISP JSON blob (for lossless export).

Persistence is batch-aware: :meth:`MispStore.save_events` writes a whole
collection cycle — audit rows, event rows, attribute rows, tag rows — in a
single transaction via ``executemany``, and
:meth:`correlatable_attributes_many` resolves every correlatable value of a
batch with one chunked ``IN (...)`` query.  ``sql_statements`` counts
Python→SQLite round trips so benchmarks can prove the batched path issues
fewer of them.

The store also persists the sharing gateway's delta-sync ledger
(``sync_state``/``sync_digests``): a per-entity audit-seq watermark plus the
content digest last successfully shared with each entity, so a sync cycle
touches only events that are new or changed since that entity's last
successful sync (docs/SHARING.md).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..clock import Clock
from ..errors import StorageError
from ..obs import MetricsRegistry, NULL_REGISTRY
from .model import MispAttribute, MispEvent

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    uuid TEXT PRIMARY KEY,
    info TEXT NOT NULL,
    date TEXT NOT NULL,
    org TEXT NOT NULL,
    threat_level_id INTEGER NOT NULL,
    analysis INTEGER NOT NULL,
    distribution INTEGER NOT NULL,
    published INTEGER NOT NULL,
    timestamp INTEGER NOT NULL,
    blob TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attributes (
    uuid TEXT PRIMARY KEY,
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    type TEXT NOT NULL,
    category TEXT NOT NULL,
    value TEXT NOT NULL,
    to_ids INTEGER NOT NULL,
    correlatable INTEGER NOT NULL,
    timestamp INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attributes_value ON attributes(value);
CREATE INDEX IF NOT EXISTS idx_attributes_event ON attributes(event_uuid);
CREATE TABLE IF NOT EXISTS event_tags (
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    name TEXT NOT NULL,
    UNIQUE(event_uuid, name)
);
CREATE TABLE IF NOT EXISTS correlations (
    source_attribute TEXT NOT NULL,
    target_attribute TEXT NOT NULL,
    source_event TEXT NOT NULL,
    target_event TEXT NOT NULL,
    value TEXT NOT NULL,
    UNIQUE(source_attribute, target_attribute)
);
CREATE TABLE IF NOT EXISTS audit_log (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    event_uuid TEXT NOT NULL,
    action TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    logged_at INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_audit_event ON audit_log(event_uuid);
CREATE TABLE IF NOT EXISTS sync_state (
    entity TEXT PRIMARY KEY,
    watermark INTEGER NOT NULL,
    updated_at INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS sync_digests (
    entity TEXT NOT NULL,
    event_uuid TEXT NOT NULL,
    digest TEXT NOT NULL,
    PRIMARY KEY (entity, event_uuid)
);
CREATE TABLE IF NOT EXISTS provenance (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    trace_id TEXT NOT NULL,
    event_uuid TEXT NOT NULL,
    kind TEXT NOT NULL,
    actor TEXT NOT NULL DEFAULT '',
    org TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT '',
    cycle INTEGER NOT NULL DEFAULT 0,
    logged_at INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_provenance_trace ON provenance(trace_id);
CREATE INDEX IF NOT EXISTS idx_provenance_event ON provenance(event_uuid);
"""

#: Batch-size histogram buckets: one cycle's cIoC count lands here.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)

#: SQLite's default variable limit is 999; stay safely under it.
_IN_CHUNK = 400


def _chunks(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


class MispStore:
    """Relational persistence for events, attributes, tags and correlations.

    ``clock`` (optional) stamps audit rows for destructive operations; when
    absent, deletes fall back to the deleted event's own timestamp.
    """

    def __init__(self, path: str = ":memory:",
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None,
                 fault_injector=None) -> None:
        # The sharing fan-out hands remote (peer) stores to worker threads;
        # every cross-thread use is serialized behind the gateway's transport
        # lock, so the connection only needs the same-thread check relaxed.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._clock = clock
        #: Optional :class:`~repro.resilience.FaultInjector` consulted at
        #: the top of every :meth:`save_events` (component ``store``, key
        #: ``save_events``), before the transaction starts.
        self.fault_injector = fault_injector
        #: Python→SQLite round trips (execute/executemany calls) issued so
        #: far; the ingest benchmark compares this between the per-event and
        #: the batched persistence paths.
        self.sql_statements = 0
        self._conn.execute("PRAGMA foreign_keys = ON")
        if path != ":memory:":
            # WAL lets readers proceed while a batch commit is in flight;
            # NORMAL fsyncs at checkpoints instead of every commit.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_SCHEMA)
        metrics = metrics or NULL_REGISTRY
        self._m_events = metrics.counter(
            "caop_misp_events_stored_total",
            "Event rows written, labelled by audit action")
        self._m_attributes = metrics.counter(
            "caop_misp_attributes_stored_total", "Attribute rows written")
        self._m_correlations = metrics.counter(
            "caop_misp_correlations_total", "Correlation edges persisted")
        self._m_batch_size = metrics.histogram(
            "caop_store_batch_size", "Events persisted per save_events call",
            buckets=BATCH_SIZE_BUCKETS)
        self._m_enrich_batch_size = metrics.histogram(
            "caop_enrich_batch_size",
            "Events written back per apply_enrichments call",
            buckets=BATCH_SIZE_BUCKETS)

    def close(self) -> None:
        """Release the underlying resources."""
        self._conn.close()

    # -- statement accounting ---------------------------------------------------

    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        self.sql_statements += 1
        return self._conn.execute(sql, params)

    def _executemany(self, sql: str, rows: Sequence[Sequence]) -> sqlite3.Cursor:
        self.sql_statements += 1
        return self._conn.executemany(sql, rows)

    # -- events ----------------------------------------------------------------

    def save_event(self, event: MispEvent, replace: bool = True) -> None:
        """Insert or update an event with all its attributes and tags.

        Every save (and delete) is recorded in the audit log, MISP-style.
        """
        self.save_events([event], replace=replace)

    def save_events(self, events: Sequence[MispEvent],
                    replace: bool = True) -> None:
        """Persist a batch of events in one transaction.

        The batched write is behaviourally identical to saving each event in
        turn — same audit rows, same replace semantics — but issues a
        bounded number of SQL statements instead of O(events × attributes).
        """
        events = list(events)
        if not events:
            return
        if self.fault_injector is not None:
            self.fault_injector.check("store", "save_events")
        uuids = [event.uuid for event in events]
        if len(set(uuids)) != len(uuids):
            # Intra-batch uuid collisions need per-event replace semantics
            # (each later save replaces the earlier one's attribute rows);
            # fall back to the serial path for this rare shape.
            for event in events:
                self._save_events_batch([event], replace=replace)
            return
        self._save_events_batch(events, replace=replace)

    def apply_enrichments(self, events: Sequence[MispEvent]) -> None:
        """Write one enrichment cycle back in a single transaction.

        ``events`` are fully-built eIoCs (score/breakdown attributes, galaxy
        tags and the enriched tag already applied in memory).  The whole
        batch lands through one set of ``executemany`` statements — the
        replacement for the ~6 per-event round trips the serial
        ``add_attribute``/``tag_event`` write-back used to issue — and each
        event gets one ``enriched`` audit row instead of one ``updated`` row
        per intermediate save.
        """
        events = list(events)
        if not events:
            return
        if self.fault_injector is not None:
            self.fault_injector.check("store", "apply_enrichments")
        uuids = [event.uuid for event in events]
        if len(set(uuids)) != len(uuids):
            raise StorageError(
                "apply_enrichments batch contains duplicate event uuids")
        self._save_events_batch(events, replace=True, action="enriched")
        self._m_enrich_batch_size.observe(len(events))

    def _save_events_batch(self, events: List[MispEvent],
                           replace: bool,
                           action: Optional[str] = None) -> None:
        uuids = [event.uuid for event in events]
        existing: set = set()
        for chunk in _chunks(uuids, _IN_CHUNK):
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                f"SELECT uuid FROM events WHERE uuid IN ({placeholders})",
                chunk).fetchall()
            existing.update(row[0] for row in rows)
        if not replace:
            for uuid in uuids:
                if uuid in existing:
                    raise StorageError(f"event {uuid} already stored")

        audit_rows: List[Tuple] = []
        event_rows: List[Tuple] = []
        attribute_rows: List[Tuple] = []
        tag_rows: List[Tuple] = []
        created = updated = 0
        for event in events:
            attributes = event.all_attributes()
            exists = event.uuid in existing
            if exists:
                updated += 1
            else:
                created += 1
            audit_rows.append((
                event.uuid,
                action or ("updated" if exists else "created"),
                f"{len(attributes)} attributes",
                int(event.timestamp.timestamp()),
            ))
            event_rows.append((
                event.uuid, event.info, event.date.isoformat(), event.org,
                event.threat_level_id, event.analysis, event.distribution,
                int(event.published), int(event.timestamp.timestamp()),
                json.dumps(event.to_dict(), sort_keys=True),
            ))
            for attribute in attributes:
                attribute_rows.append((
                    attribute.uuid, event.uuid, attribute.type,
                    attribute.category, attribute.value,
                    int(attribute.to_ids), int(attribute.correlatable),
                    int(attribute.timestamp.timestamp()),
                ))
            for tag in event.tags:
                tag_rows.append((event.uuid, tag.name))

        with self._conn:
            self._executemany(
                "INSERT INTO audit_log (event_uuid, action, detail, logged_at)"
                " VALUES (?,?,?,?)", audit_rows)
            self._executemany(
                "INSERT OR REPLACE INTO events "
                "(uuid, info, date, org, threat_level_id, analysis, distribution,"
                " published, timestamp, blob) VALUES (?,?,?,?,?,?,?,?,?,?)",
                event_rows)
            self._executemany(
                "DELETE FROM attributes WHERE event_uuid = ?",
                [(uuid,) for uuid in uuids])
            self._executemany(
                "DELETE FROM event_tags WHERE event_uuid = ?",
                [(uuid,) for uuid in uuids])
            self._executemany(
                "INSERT OR REPLACE INTO attributes "
                "(uuid, event_uuid, type, category, value, to_ids,"
                " correlatable, timestamp) VALUES (?,?,?,?,?,?,?,?)",
                attribute_rows)
            if tag_rows:
                self._executemany(
                    "INSERT OR IGNORE INTO event_tags (event_uuid, name)"
                    " VALUES (?,?)", tag_rows)
        if action is not None:
            self._m_events.inc(len(events), action=action)
        else:
            if created:
                self._m_events.inc(created, action="created")
            if updated:
                self._m_events.inc(updated, action="updated")
        self._m_attributes.inc(len(attribute_rows))
        self._m_batch_size.observe(len(events))

    def has_event(self, uuid: str) -> bool:
        """Whether an event uuid is stored."""
        row = self._execute(
            "SELECT 1 FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row is not None

    def get_event(self, uuid: str) -> Optional[MispEvent]:
        """Fetch one event by uuid."""
        row = self._execute(
            "SELECT blob FROM events WHERE uuid = ?", (uuid,)).fetchone()
        if row is None:
            return None
        return MispEvent.from_dict(json.loads(row[0]))

    def get_events(self, uuids: Sequence[str]) -> Dict[str, Optional[MispEvent]]:
        """Batch-fetch events with chunked ``IN (...)`` queries.

        Returns ``uuid -> event`` for every requested uuid, preserving the
        request order; uuids with no stored event map to ``None``.  N lookups
        cost ``ceil(N / chunk)`` round trips instead of N.
        """
        result: Dict[str, Optional[MispEvent]] = {uuid: None for uuid in uuids}
        unique = list(result)
        for chunk in _chunks(unique, _IN_CHUNK):
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                f"SELECT uuid, blob FROM events WHERE uuid IN ({placeholders})",
                chunk).fetchall()
            for uuid, blob in rows:
                result[uuid] = MispEvent.from_dict(json.loads(blob))
        return result

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        """Which of the given event uuids carry a tag (one chunked query)."""
        unique = list(dict.fromkeys(uuids))
        found: Set[str] = set()
        for chunk in _chunks(unique, _IN_CHUNK):
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                "SELECT DISTINCT event_uuid FROM event_tags"
                f" WHERE name = ? AND event_uuid IN ({placeholders})",
                [tag, *chunk]).fetchall()
            found.update(row[0] for row in rows)
        return found

    def delete_event(self, uuid: str) -> bool:
        """Delete an event (cascades to attributes)."""
        with self._conn:
            row = self._execute(
                "SELECT timestamp FROM events WHERE uuid = ?", (uuid,)
            ).fetchone()
            cursor = self._execute("DELETE FROM events WHERE uuid = ?", (uuid,))
            if cursor.rowcount > 0:
                if self._clock is not None:
                    logged_at = int(self._clock.now().timestamp())
                else:
                    logged_at = int(row[0]) if row is not None else 0
                self._execute(
                    "INSERT INTO audit_log (event_uuid, action, detail,"
                    " logged_at) VALUES (?,?,?,?)",
                    (uuid, "deleted", "", logged_at),
                )
        return cursor.rowcount > 0

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        """The audit trail of one event, oldest first."""
        rows = self._execute(
            "SELECT seq, action, detail, logged_at FROM audit_log"
            " WHERE event_uuid = ? ORDER BY seq", (uuid,)).fetchall()
        return [{"seq": r[0], "action": r[1], "detail": r[2],
                 "logged_at": r[3]} for r in rows]

    def audit_count(self) -> int:
        """Total audit-log rows."""
        return self._execute("SELECT COUNT(*) FROM audit_log").fetchone()[0]

    # -- provenance (lineage) -----------------------------------------------------

    def add_provenance(self, rows: Sequence[Any]) -> int:
        """Append lineage rows in one batch transaction.

        ``rows`` are :class:`~repro.obs.provenance.ProvenanceEvent`-shaped
        objects (attribute access; no import needed here).  Insertion order
        is preserved by the autoincrement ``seq``, so callers that buffer
        in deterministic order persist in deterministic order.
        """
        rows = list(rows)
        if not rows:
            return 0
        with self._conn:
            self._executemany(
                "INSERT INTO provenance (trace_id, event_uuid, kind, actor,"
                " org, detail, cycle, logged_at) VALUES (?,?,?,?,?,?,?,?)",
                [(r.trace_id, r.event_uuid, r.kind, r.actor, r.org,
                  r.detail, int(r.cycle), int(r.logged_at)) for r in rows])
        return len(rows)

    @staticmethod
    def _provenance_row(raw: Sequence[Any]) -> Dict[str, Any]:
        return {"seq": raw[0], "trace_id": raw[1], "event_uuid": raw[2],
                "kind": raw[3], "actor": raw[4], "org": raw[5],
                "detail": raw[6], "cycle": raw[7], "logged_at": raw[8]}

    _PROVENANCE_COLS = ("seq, trace_id, event_uuid, kind, actor, org,"
                        " detail, cycle, logged_at")

    def provenance_for_event(self, event_uuid: str) -> List[Dict[str, Any]]:
        """One event's lineage rows, oldest first."""
        rows = self._execute(
            f"SELECT {self._PROVENANCE_COLS} FROM provenance"
            " WHERE event_uuid = ? ORDER BY seq", (event_uuid,)).fetchall()
        return [self._provenance_row(row) for row in rows]

    def provenance_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every lineage row carrying one trace id, oldest first."""
        rows = self._execute(
            f"SELECT {self._PROVENANCE_COLS} FROM provenance"
            " WHERE trace_id = ? ORDER BY seq", (trace_id,)).fetchall()
        return [self._provenance_row(row) for row in rows]

    def provenance_count(self) -> int:
        """Total lineage rows."""
        return self._execute(
            "SELECT COUNT(*) FROM provenance").fetchone()[0]

    def latest_traced_event(self) -> Optional[str]:
        """The event uuid of the newest lineage row (demo/CLI convenience)."""
        row = self._execute(
            "SELECT event_uuid FROM provenance"
            " ORDER BY seq DESC LIMIT 1").fetchone()
        return row[0] if row is not None else None

    # -- delta-sync ledger --------------------------------------------------------

    def max_audit_seq(self) -> int:
        """The highest audit-log sequence number written so far (0 if none).

        The audit sequence is the store's monotonic change cursor: every
        save/enrich/delete lands one row, so "what changed since seq S" is a
        complete delta regardless of whether the edit bumped the event's own
        timestamp.  The sharing gateway scans against this cursor.
        """
        row = self._execute("SELECT MAX(seq) FROM audit_log").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def events_changed_since(self, after_seq: int,
                             until_seq: Optional[int] = None
                             ) -> List[Tuple[str, int]]:
        """Events touched by audit rows in ``(after_seq, until_seq]``.

        Returns ``(event_uuid, last_change_seq)`` pairs ordered by that last
        change (then uuid, for a total deterministic order).  Deleted events
        drop out naturally: the join keeps only uuids still present in
        ``events``.
        """
        query = ("SELECT e.uuid, MAX(a.seq) AS last_seq"
                 " FROM audit_log a JOIN events e ON e.uuid = a.event_uuid"
                 " WHERE a.seq > ?")
        params: List[Any] = [int(after_seq)]
        if until_seq is not None:
            query += " AND a.seq <= ?"
            params.append(int(until_seq))
        query += " GROUP BY e.uuid ORDER BY last_seq, e.uuid"
        rows = self._execute(query, params).fetchall()
        return [(row[0], int(row[1])) for row in rows]

    def get_sync_watermark(self, entity: str) -> int:
        """The audit-seq watermark of one sync entity (0 when never synced)."""
        row = self._execute(
            "SELECT watermark FROM sync_state WHERE entity = ?",
            (entity,)).fetchone()
        return int(row[0]) if row is not None else 0

    def set_sync_watermark(self, entity: str, watermark: int) -> None:
        """Persist an entity's watermark (stamped on the store clock)."""
        logged_at = int(self._clock.now().timestamp()) \
            if self._clock is not None else 0
        with self._conn:
            self._execute(
                "INSERT OR REPLACE INTO sync_state (entity, watermark,"
                " updated_at) VALUES (?,?,?)",
                (entity, int(watermark), logged_at))

    def sync_watermarks(self) -> Dict[str, int]:
        """Every persisted entity watermark (entity -> audit seq)."""
        rows = self._execute(
            "SELECT entity, watermark FROM sync_state ORDER BY entity"
        ).fetchall()
        return {row[0]: int(row[1]) for row in rows}

    def get_sync_digests(self, entity: str,
                         uuids: Sequence[str]) -> Dict[str, str]:
        """Last successfully-synced content digests for one entity.

        Returns ``event_uuid -> digest`` for the requested uuids that have a
        ledger row (chunked ``IN (...)`` lookups); absent uuids are simply
        missing from the result.
        """
        unique = list(dict.fromkeys(uuids))
        found: Dict[str, str] = {}
        for chunk in _chunks(unique, _IN_CHUNK):
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                "SELECT event_uuid, digest FROM sync_digests"
                f" WHERE entity = ? AND event_uuid IN ({placeholders})",
                [entity, *chunk]).fetchall()
            found.update({row[0]: row[1] for row in rows})
        return found

    def set_sync_digests(self, entity: str,
                         digests: Mapping[str, str]) -> None:
        """Record one cycle's synced digests in a single ``executemany``."""
        if not digests:
            return
        with self._conn:
            self._executemany(
                "INSERT OR REPLACE INTO sync_digests"
                " (entity, event_uuid, digest) VALUES (?,?,?)",
                [(entity, uuid, digest)
                 for uuid, digest in digests.items()])

    def sync_digest_count(self, entity: Optional[str] = None) -> int:
        """Ledger rows, optionally for one entity."""
        if entity is None:
            return self._execute(
                "SELECT COUNT(*) FROM sync_digests").fetchone()[0]
        return self._execute(
            "SELECT COUNT(*) FROM sync_digests WHERE entity = ?",
            (entity,)).fetchone()[0]

    def event_count(self) -> int:
        """Number of stored events."""
        return self._execute("SELECT COUNT(*) FROM events").fetchone()[0]

    def attribute_count(self) -> int:
        """Number of stored attributes."""
        return self._execute("SELECT COUNT(*) FROM attributes").fetchone()[0]

    def list_events(self, limit: Optional[int] = None,
                    published_only: bool = False) -> List[MispEvent]:
        """Stored events, newest first."""
        query = "SELECT blob FROM events"
        params: List[Any] = []
        if published_only:
            query += " WHERE published = 1"
        query += " ORDER BY timestamp DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._execute(query, params).fetchall()
        return [MispEvent.from_dict(json.loads(row[0])) for row in rows]

    # -- search -------------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        """Exact value search: returns (event_uuid, attribute_uuid) pairs."""
        rows = self._execute(
            "SELECT event_uuid, uuid FROM attributes WHERE value = ?", (value,)
        ).fetchall()
        return [(r[0], r[1]) for r in rows]

    def search_events(self, info_substring: Optional[str] = None,
                      tag: Optional[str] = None,
                      attribute_type: Optional[str] = None,
                      value: Optional[str] = None) -> List[MispEvent]:
        """Filtered event search across the relational tables."""
        query = "SELECT DISTINCT e.blob FROM events e"
        clauses: List[str] = []
        params: List[Any] = []
        if tag is not None:
            query += " JOIN event_tags t ON t.event_uuid = e.uuid"
            clauses.append("t.name = ?")
            params.append(tag)
        if attribute_type is not None or value is not None:
            query += " JOIN attributes a ON a.event_uuid = e.uuid"
            if attribute_type is not None:
                clauses.append("a.type = ?")
                params.append(attribute_type)
            if value is not None:
                clauses.append("a.value = ?")
                params.append(value)
        if info_substring is not None:
            clauses.append("e.info LIKE ?")
            params.append(f"%{info_substring}%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY e.timestamp DESC"
        rows = self._execute(query, params).fetchall()
        return [MispEvent.from_dict(json.loads(row[0])) for row in rows]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        """(event_uuid, attribute_uuid) of correlatable rows matching value."""
        query = ("SELECT event_uuid, uuid FROM attributes "
                 "WHERE value = ? AND correlatable = 1")
        params: List[Any] = [value]
        if exclude_event is not None:
            query += " AND event_uuid != ?"
            params.append(exclude_event)
        return [(r[0], r[1]) for r in self._execute(query, params).fetchall()]

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        """Resolve many correlatable values with chunked ``IN`` queries.

        Returns ``value -> [(event_uuid, attribute_uuid), ...]`` (insertion
        order per value, matching :meth:`correlatable_attributes`); values
        with no match map to an empty list.
        """
        result: Dict[str, List[Tuple[str, str]]] = {
            value: [] for value in values}
        unique = list(result)
        for chunk in _chunks(unique, _IN_CHUNK):
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                "SELECT value, event_uuid, uuid FROM attributes"
                f" WHERE correlatable = 1 AND value IN ({placeholders})"
                " ORDER BY rowid", chunk).fetchall()
            for value, event_uuid, attribute_uuid in rows:
                result[value].append((event_uuid, attribute_uuid))
        return result

    # -- correlations --------------------------------------------------------------

    def save_correlation(self, source_attribute: str, target_attribute: str,
                         source_event: str, target_event: str, value: str) -> None:
        """Persist one correlation edge (idempotent)."""
        self.save_correlations([
            (source_attribute, target_attribute, source_event, target_event,
             value)])

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        """Persist a batch of correlation edges in one transaction.

        Each edge is ``(source_attribute, target_attribute, source_event,
        target_event, value)``; duplicates are ignored.  Returns the number
        of edges actually inserted.
        """
        edges = list(edges)
        if not edges:
            return 0
        with self._conn:
            before = self._conn.total_changes
            self._executemany(
                "INSERT OR IGNORE INTO correlations VALUES (?,?,?,?,?)", edges)
            inserted = self._conn.total_changes - before
        if inserted > 0:
            self._m_correlations.inc(inserted)
        return inserted

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        """Correlation rows touching one event."""
        rows = self._execute(
            "SELECT source_attribute, target_attribute, source_event,"
            " target_event, value FROM correlations"
            " WHERE source_event = ? OR target_event = ?",
            (event_uuid, event_uuid),
        ).fetchall()
        return [
            {
                "source_attribute": r[0], "target_attribute": r[1],
                "source_event": r[2], "target_event": r[3], "value": r[4],
            }
            for r in rows
        ]

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        """Correlation rows touching each of many events, batched.

        Returns ``uuid -> rows`` for every requested uuid (empty list when
        an event has no correlations); a row linking two requested events
        appears under both.  Row order per event matches
        :meth:`correlations_for_event` (insertion order).
        """
        result: Dict[str, List[Dict[str, str]]] = {uuid: [] for uuid in uuids}
        unique = list(result)
        for chunk in _chunks(unique, _IN_CHUNK):
            chunk_set = set(chunk)
            placeholders = ",".join("?" * len(chunk))
            rows = self._execute(
                "SELECT source_attribute, target_attribute, source_event,"
                " target_event, value FROM correlations"
                f" WHERE source_event IN ({placeholders})"
                f" OR target_event IN ({placeholders})"
                " ORDER BY rowid", [*chunk, *chunk]).fetchall()
            for r in rows:
                row = {
                    "source_attribute": r[0], "target_attribute": r[1],
                    "source_event": r[2], "target_event": r[3], "value": r[4],
                }
                # Attach only to uuids of *this* chunk: a row whose two
                # sides land in different chunks is returned by both chunk
                # queries and must not be double-counted.
                for side in {r[2], r[3]}:
                    if side in chunk_set:
                        result[side].append(row)
        return result

    def correlation_count(self) -> int:
        """Total stored correlation edges."""
        return self._execute("SELECT COUNT(*) FROM correlations").fetchone()[0]
