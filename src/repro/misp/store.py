"""SQLite-backed relational store for MISP events.

The paper's operational module keeps "a relational database to store locally
information about IoCs and the monitored infrastructure" (§III-B1).  Events
are stored both relationally (events/attributes/tags rows for querying and
correlation) and as their canonical MISP JSON blob (for lossless export).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import StorageError
from ..obs import MetricsRegistry, NULL_REGISTRY
from .model import MispAttribute, MispEvent

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    uuid TEXT PRIMARY KEY,
    info TEXT NOT NULL,
    date TEXT NOT NULL,
    org TEXT NOT NULL,
    threat_level_id INTEGER NOT NULL,
    analysis INTEGER NOT NULL,
    distribution INTEGER NOT NULL,
    published INTEGER NOT NULL,
    timestamp INTEGER NOT NULL,
    blob TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attributes (
    uuid TEXT PRIMARY KEY,
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    type TEXT NOT NULL,
    category TEXT NOT NULL,
    value TEXT NOT NULL,
    to_ids INTEGER NOT NULL,
    correlatable INTEGER NOT NULL,
    timestamp INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attributes_value ON attributes(value);
CREATE INDEX IF NOT EXISTS idx_attributes_event ON attributes(event_uuid);
CREATE TABLE IF NOT EXISTS event_tags (
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    name TEXT NOT NULL,
    UNIQUE(event_uuid, name)
);
CREATE TABLE IF NOT EXISTS correlations (
    source_attribute TEXT NOT NULL,
    target_attribute TEXT NOT NULL,
    source_event TEXT NOT NULL,
    target_event TEXT NOT NULL,
    value TEXT NOT NULL,
    UNIQUE(source_attribute, target_attribute)
);
CREATE TABLE IF NOT EXISTS audit_log (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    event_uuid TEXT NOT NULL,
    action TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    logged_at INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_audit_event ON audit_log(event_uuid);
"""


class MispStore:
    """Relational persistence for events, attributes, tags and correlations."""

    def __init__(self, path: str = ":memory:",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        metrics = metrics or NULL_REGISTRY
        self._m_events = metrics.counter(
            "caop_misp_events_stored_total",
            "Event rows written, labelled by audit action")
        self._m_attributes = metrics.counter(
            "caop_misp_attributes_stored_total", "Attribute rows written")
        self._m_correlations = metrics.counter(
            "caop_misp_correlations_total", "Correlation edges persisted")

    def close(self) -> None:
        """Release the underlying resources."""
        self._conn.close()

    # -- events ----------------------------------------------------------------

    def save_event(self, event: MispEvent, replace: bool = True) -> None:
        """Insert or update an event with all its attributes and tags.

        Every save (and delete) is recorded in the audit log, MISP-style.
        """
        blob = json.dumps(event.to_dict(), sort_keys=True)
        exists = self.has_event(event.uuid)
        if exists and not replace:
            raise StorageError(f"event {event.uuid} already stored")
        with self._conn:
            self._conn.execute(
                "INSERT INTO audit_log (event_uuid, action, detail, logged_at)"
                " VALUES (?,?,?,?)",
                (event.uuid, "updated" if exists else "created",
                 f"{len(event.all_attributes())} attributes",
                 int(event.timestamp.timestamp())),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO events "
                "(uuid, info, date, org, threat_level_id, analysis, distribution,"
                " published, timestamp, blob) VALUES (?,?,?,?,?,?,?,?,?,?)",
                (
                    event.uuid, event.info, event.date.isoformat(), event.org,
                    event.threat_level_id, event.analysis, event.distribution,
                    int(event.published), int(event.timestamp.timestamp()), blob,
                ),
            )
            self._conn.execute(
                "DELETE FROM attributes WHERE event_uuid = ?", (event.uuid,))
            self._conn.execute(
                "DELETE FROM event_tags WHERE event_uuid = ?", (event.uuid,))
            for attribute in event.all_attributes():
                self._conn.execute(
                    "INSERT OR REPLACE INTO attributes "
                    "(uuid, event_uuid, type, category, value, to_ids,"
                    " correlatable, timestamp) VALUES (?,?,?,?,?,?,?,?)",
                    (
                        attribute.uuid, event.uuid, attribute.type,
                        attribute.category, attribute.value,
                        int(attribute.to_ids), int(attribute.correlatable),
                        int(attribute.timestamp.timestamp()),
                    ),
                )
            for tag in event.tags:
                self._conn.execute(
                    "INSERT OR IGNORE INTO event_tags (event_uuid, name) VALUES (?,?)",
                    (event.uuid, tag.name),
                )
        self._m_events.inc(action="updated" if exists else "created")
        self._m_attributes.inc(len(event.all_attributes()))

    def has_event(self, uuid: str) -> bool:
        """Whether an event uuid is stored."""
        row = self._conn.execute(
            "SELECT 1 FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row is not None

    def get_event(self, uuid: str) -> Optional[MispEvent]:
        """Fetch one event by uuid."""
        row = self._conn.execute(
            "SELECT blob FROM events WHERE uuid = ?", (uuid,)).fetchone()
        if row is None:
            return None
        return MispEvent.from_dict(json.loads(row[0]))

    def delete_event(self, uuid: str) -> bool:
        """Delete an event (cascades to attributes)."""
        with self._conn:
            cursor = self._conn.execute("DELETE FROM events WHERE uuid = ?", (uuid,))
            if cursor.rowcount > 0:
                self._conn.execute(
                    "INSERT INTO audit_log (event_uuid, action, detail,"
                    " logged_at) VALUES (?,?,?,0)",
                    (uuid, "deleted", ""),
                )
        return cursor.rowcount > 0

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        """The audit trail of one event, oldest first."""
        rows = self._conn.execute(
            "SELECT seq, action, detail, logged_at FROM audit_log"
            " WHERE event_uuid = ? ORDER BY seq", (uuid,)).fetchall()
        return [{"seq": r[0], "action": r[1], "detail": r[2],
                 "logged_at": r[3]} for r in rows]

    def audit_count(self) -> int:
        """Total audit-log rows."""
        return self._conn.execute("SELECT COUNT(*) FROM audit_log").fetchone()[0]

    def event_count(self) -> int:
        """Number of stored events."""
        return self._conn.execute("SELECT COUNT(*) FROM events").fetchone()[0]

    def attribute_count(self) -> int:
        """Number of stored attributes."""
        return self._conn.execute("SELECT COUNT(*) FROM attributes").fetchone()[0]

    def list_events(self, limit: Optional[int] = None,
                    published_only: bool = False) -> List[MispEvent]:
        """Stored events, newest first."""
        query = "SELECT blob FROM events"
        if published_only:
            query += " WHERE published = 1"
        query += " ORDER BY timestamp DESC"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = self._conn.execute(query).fetchall()
        return [MispEvent.from_dict(json.loads(row[0])) for row in rows]

    # -- search -------------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        """Exact value search: returns (event_uuid, attribute_uuid) pairs."""
        rows = self._conn.execute(
            "SELECT event_uuid, uuid FROM attributes WHERE value = ?", (value,)
        ).fetchall()
        return [(r[0], r[1]) for r in rows]

    def search_events(self, info_substring: Optional[str] = None,
                      tag: Optional[str] = None,
                      attribute_type: Optional[str] = None,
                      value: Optional[str] = None) -> List[MispEvent]:
        """Filtered event search across the relational tables."""
        query = "SELECT DISTINCT e.blob FROM events e"
        clauses: List[str] = []
        params: List[Any] = []
        if tag is not None:
            query += " JOIN event_tags t ON t.event_uuid = e.uuid"
            clauses.append("t.name = ?")
            params.append(tag)
        if attribute_type is not None or value is not None:
            query += " JOIN attributes a ON a.event_uuid = e.uuid"
            if attribute_type is not None:
                clauses.append("a.type = ?")
                params.append(attribute_type)
            if value is not None:
                clauses.append("a.value = ?")
                params.append(value)
        if info_substring is not None:
            clauses.append("e.info LIKE ?")
            params.append(f"%{info_substring}%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY e.timestamp DESC"
        rows = self._conn.execute(query, params).fetchall()
        return [MispEvent.from_dict(json.loads(row[0])) for row in rows]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        """(event_uuid, attribute_uuid) of correlatable rows matching value."""
        query = ("SELECT event_uuid, uuid FROM attributes "
                 "WHERE value = ? AND correlatable = 1")
        params: List[Any] = [value]
        if exclude_event is not None:
            query += " AND event_uuid != ?"
            params.append(exclude_event)
        return [(r[0], r[1]) for r in self._conn.execute(query, params).fetchall()]

    # -- correlations --------------------------------------------------------------

    def save_correlation(self, source_attribute: str, target_attribute: str,
                         source_event: str, target_event: str, value: str) -> None:
        """Persist one correlation edge (idempotent)."""
        with self._conn:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO correlations VALUES (?,?,?,?,?)",
                (source_attribute, target_attribute, source_event, target_event, value),
            )
        if cursor.rowcount > 0:
            self._m_correlations.inc()

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        """Correlation rows touching one event."""
        rows = self._conn.execute(
            "SELECT source_attribute, target_attribute, source_event,"
            " target_event, value FROM correlations"
            " WHERE source_event = ? OR target_event = ?",
            (event_uuid, event_uuid),
        ).fetchall()
        return [
            {
                "source_attribute": r[0], "target_attribute": r[1],
                "source_event": r[2], "target_event": r[3], "value": r[4],
            }
            for r in rows
        ]

    def correlation_count(self) -> int:
        """Total stored correlation edges."""
        return self._conn.execute("SELECT COUNT(*) FROM correlations").fetchone()[0]
