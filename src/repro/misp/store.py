"""Relational store for MISP events, backed by pluggable storage engines.

The paper's operational module keeps "a relational database to store locally
information about IoCs and the monitored infrastructure" (§III-B1).  Events
are stored both relationally (events/attributes/tags rows for querying and
correlation) and as their canonical MISP JSON blob (for lossless export).

:class:`MispStore` is a facade: it converts
:class:`~repro.misp.model.MispEvent` objects to and from plain rows, emits
metrics, applies fault-injection seams, and delegates all persistence to a
:class:`~repro.misp.storage.base.StorageBackend` —

- the single-file SQLite backend (default, and the on-disk format of every
  pre-sharding store);
- the hash-sharded SQLite backend (``shards=N``), which bounds per-event
  scans to ``1/N`` of the corpus (docs/PERFORMANCE.md);
- the in-memory backend (``backend=InMemoryBackend()``) for tests/benches.

Backends are interchangeable by construction: the conformance suite
(tests/test_storage_backends.py) asserts byte-identical audit history,
correlation graphs, sync ledgers and lineage across all of them, at any
shard count.  ``MispStore(path)`` re-opens an existing store with whatever
layout it was created with (recorded in its ``store_meta`` table).

Persistence is batch-aware: :meth:`MispStore.save_events` writes a whole
collection cycle — audit rows, event rows, attribute rows, tag rows — in a
single transaction, and :meth:`correlatable_attributes_many` resolves every
correlatable value of a batch with chunked ``IN (...)`` queries sized by the
shared bound-variable budget.  ``sql_statements`` counts Python→storage
round trips so benchmarks can prove the batched path issues fewer of them.

The store also persists the sharing gateway's delta-sync ledger
(``sync_state``/``sync_digests``): a per-entity audit-seq watermark plus the
content digest last successfully shared with each entity, so a sync cycle
touches only events that are new or changed since that entity's last
successful sync (docs/SHARING.md).
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..clock import Clock
from ..errors import StorageError
from ..obs import MetricsRegistry, NULL_REGISTRY
from .model import MispEvent
from .storage import (
    PersistBatch,
    SQLiteBackend,
    ShardedSQLiteBackend,
    StorageBackend,
    detect_shard_count,
)

#: Batch-size histogram buckets: one cycle's cIoC count lands here.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


@dataclass(frozen=True)
class StoreChange:
    """One audit-log row viewed as a change-feed entry.

    ``seq`` is the store's monotonic cursor; ``action`` is one of
    ``created`` / ``updated`` / ``enriched`` / ``deleted``.  Unlike
    :meth:`MispStore.events_changed_since`, the change feed keeps
    ``deleted`` rows so incremental consumers can retire state for
    purged events instead of silently never hearing about them.
    """

    seq: int
    event_uuid: str
    action: str
    logged_at: int


class MispStore:
    """Relational persistence for events, attributes, tags and correlations.

    ``clock`` (optional) stamps audit rows for destructive operations; when
    absent, deletes fall back to the deleted event's own timestamp.

    ``shards`` selects the hash-sharded backend (``>= 2``); ``None`` means
    "whatever the file at ``path`` was created with, else 1".  Passing a
    ``backend`` overrides both and takes ownership of it.
    """

    def __init__(self, path: str = ":memory:",
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None,
                 fault_injector=None,
                 shards: Optional[int] = None,
                 backend: Optional[StorageBackend] = None) -> None:
        self._clock = clock
        #: Optional :class:`~repro.resilience.FaultInjector` consulted at
        #: the top of every :meth:`save_events` (component ``store``, key
        #: ``save_events``), before the transaction starts.
        self.fault_injector = fault_injector
        if backend is None:
            detected = detect_shard_count(path)
            if shards is None:
                shards = detected if detected is not None else 1
            elif detected is not None and detected != shards:
                raise StorageError(
                    f"store at {path!r} was created with {detected} "
                    f"shard(s); refusing to open it with {shards}")
            if shards >= 2:
                backend = ShardedSQLiteBackend(path, shards=shards)
            else:
                backend = SQLiteBackend(path)
        #: The :class:`~repro.misp.storage.base.StorageBackend` doing the
        #: actual persistence.
        self.backend = backend
        #: JSON blob → MispEvent decodes performed so far.  The idle-cost
        #: bench asserts quiet cycles keep this flat (0 per quiet cycle).
        self._payloads_deserialized = 0
        metrics = metrics or NULL_REGISTRY
        self._m_events = metrics.counter(
            "caop_misp_events_stored_total",
            "Event rows written, labelled by audit action")
        self._m_attributes = metrics.counter(
            "caop_misp_attributes_stored_total", "Attribute rows written")
        self._m_correlations = metrics.counter(
            "caop_misp_correlations_total", "Correlation edges persisted")
        self._m_batch_size = metrics.histogram(
            "caop_store_batch_size", "Events persisted per save_events call",
            buckets=BATCH_SIZE_BUCKETS)
        self._m_enrich_batch_size = metrics.histogram(
            "caop_enrich_batch_size",
            "Events written back per apply_enrichments call",
            buckets=BATCH_SIZE_BUCKETS)
        self._m_shard_batch_size = metrics.histogram(
            "caop_store_shard_batch_size",
            "Events persisted per shard per save_events call",
            buckets=BATCH_SIZE_BUCKETS)
        info = backend.info()
        metrics.gauge(
            "caop_store_shards",
            "Shard count of the MISP store backend").set(info.shard_count)

    def close(self) -> None:
        """Release the underlying resources."""
        self.backend.close()

    @property
    def sql_statements(self) -> int:
        """Python→storage round trips issued so far (read-only)."""
        return self.backend.sql_statements

    @property
    def payloads_deserialized(self) -> int:
        """JSON payload → event decodes performed so far (read-only).

        The second currency of the idle-cost budget alongside
        ``sql_statements``: a steady-state cycle that touches no events
        must not move this number.
        """
        return self._payloads_deserialized

    def _decode(self, blob: str) -> MispEvent:
        self._payloads_deserialized += 1
        return MispEvent.from_dict(json.loads(blob))

    @property
    def shard_count(self) -> int:
        """How many shards back this store (1 for unsharded backends)."""
        return self.backend.info().shard_count

    def query_plan(self, sql: str, params: Sequence = ()) -> str:
        """``EXPLAIN QUERY PLAN`` output for SQLite-backed stores.

        Raises :class:`StorageError` for backends without a SQL planner.
        """
        plan = getattr(self.backend, "query_plan", None)
        if plan is None:
            raise StorageError(
                f"{self.backend.info().kind} backend has no query planner")
        return plan(sql, params)

    # -- events ----------------------------------------------------------------

    def save_event(self, event: MispEvent, replace: bool = True) -> None:
        """Insert or update an event with all its attributes and tags.

        Every save (and delete) is recorded in the audit log, MISP-style.
        """
        self.save_events([event], replace=replace)

    def save_events(self, events: Sequence[MispEvent],
                    replace: bool = True) -> None:
        """Persist a batch of events in one transaction.

        The batched write is behaviourally identical to saving each event in
        turn — same audit rows, same replace semantics — but issues a
        bounded number of SQL statements instead of O(events × attributes).
        """
        events = list(events)
        if not events:
            return
        if self.fault_injector is not None:
            self.fault_injector.check("store", "save_events")
        uuids = [event.uuid for event in events]
        if len(set(uuids)) != len(uuids):
            # Intra-batch uuid collisions need per-event replace semantics
            # (each later save replaces the earlier one's attribute rows);
            # fall back to the serial path for this rare shape.
            for event in events:
                self._save_events_batch([event], replace=replace)
            return
        self._save_events_batch(events, replace=replace)

    def apply_enrichments(self, events: Sequence[MispEvent]) -> None:
        """Write one enrichment cycle back in a single transaction.

        ``events`` are fully-built eIoCs (score/breakdown attributes, galaxy
        tags and the enriched tag already applied in memory).  The whole
        batch lands through one set of ``executemany`` statements — the
        replacement for the ~6 per-event round trips the serial
        ``add_attribute``/``tag_event`` write-back used to issue — and each
        event gets one ``enriched`` audit row instead of one ``updated`` row
        per intermediate save.
        """
        events = list(events)
        if not events:
            return
        if self.fault_injector is not None:
            self.fault_injector.check("store", "apply_enrichments")
        uuids = [event.uuid for event in events]
        if len(set(uuids)) != len(uuids):
            raise StorageError(
                "apply_enrichments batch contains duplicate event uuids")
        self._save_events_batch(events, replace=True, action="enriched")
        self._m_enrich_batch_size.observe(len(events))

    def _save_events_batch(self, events: List[MispEvent],
                           replace: bool,
                           action: Optional[str] = None) -> None:
        uuids = [event.uuid for event in events]
        existing = self.backend.existing_events(uuids)
        if not replace:
            for uuid in uuids:
                if uuid in existing:
                    raise StorageError(f"event {uuid} already stored")

        audit_rows: List[Tuple] = []
        event_rows: List[Tuple] = []
        attribute_rows: List[Tuple] = []
        tag_rows: List[Tuple] = []
        created = updated = 0
        for event in events:
            attributes = event.all_attributes()
            exists = event.uuid in existing
            if exists:
                updated += 1
            else:
                created += 1
            audit_rows.append((
                event.uuid,
                action or ("updated" if exists else "created"),
                f"{len(attributes)} attributes",
                int(event.timestamp.timestamp()),
            ))
            event_rows.append((
                event.uuid, event.info, event.date.isoformat(), event.org,
                event.threat_level_id, event.analysis, event.distribution,
                int(event.published), int(event.timestamp.timestamp()),
                json.dumps(event.to_dict(), sort_keys=True),
            ))
            for attribute in attributes:
                attribute_rows.append((
                    attribute.uuid, event.uuid, attribute.type,
                    attribute.category, attribute.value,
                    int(attribute.to_ids), int(attribute.correlatable),
                    int(attribute.timestamp.timestamp()),
                ))
            for tag in event.tags:
                tag_rows.append((event.uuid, tag.name))

        per_shard = self.backend.persist_batch(PersistBatch(
            uuids=uuids, audit_rows=audit_rows, event_rows=event_rows,
            attribute_rows=attribute_rows, tag_rows=tag_rows,
            new_events=created))
        if action is not None:
            self._m_events.inc(len(events), action=action)
        else:
            if created:
                self._m_events.inc(created, action="created")
            if updated:
                self._m_events.inc(updated, action="updated")
        self._m_attributes.inc(len(attribute_rows))
        self._m_batch_size.observe(len(events))
        for shard, count in sorted(per_shard.items()):
            self._m_shard_batch_size.observe(count, shard=str(shard))

    def has_event(self, uuid: str) -> bool:
        """Whether an event uuid is stored."""
        return self.backend.has_event(uuid)

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        """Which of the given uuids are stored (chunked batch probe)."""
        return self.backend.existing_events(uuids)

    def get_event(self, uuid: str) -> Optional[MispEvent]:
        """Fetch one event by uuid."""
        blob = self.backend.get_event_blob(uuid)
        if blob is None:
            return None
        return self._decode(blob)

    def get_events(self, uuids: Sequence[str]) -> Dict[str, Optional[MispEvent]]:
        """Batch-fetch events with chunked ``IN (...)`` queries.

        Returns ``uuid -> event`` for every requested uuid, preserving the
        request order; uuids with no stored event map to ``None``.  N lookups
        cost ``ceil(N / chunk)`` round trips instead of N.
        """
        blobs = self.backend.get_event_blobs(uuids)
        return {uuid: self._decode(blob) if blob is not None else None
                for uuid, blob in blobs.items()}

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        """Which of the given event uuids carry a tag (one chunked query)."""
        return self.backend.events_with_tag(tag, uuids)

    def delete_event(self, uuid: str) -> bool:
        """Delete an event (cascades to attributes)."""
        logged_at = int(self._clock.now().timestamp()) \
            if self._clock is not None else None
        return self.backend.delete_event(uuid, logged_at=logged_at)

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        """The audit trail of one event, oldest first."""
        return self.backend.event_history(uuid)

    def audit_count(self) -> int:
        """Total audit-log rows."""
        return self.backend.audit_count()

    # -- provenance (lineage) -----------------------------------------------------

    def add_provenance(self, rows: Sequence[Any]) -> int:
        """Append lineage rows in one batch transaction.

        ``rows`` are :class:`~repro.obs.provenance.ProvenanceEvent`-shaped
        objects (attribute access; no import needed here).  Insertion order
        is preserved by the autoincrement ``seq``, so callers that buffer
        in deterministic order persist in deterministic order.
        """
        return self.backend.add_provenance(
            [(r.trace_id, r.event_uuid, r.kind, r.actor, r.org,
              r.detail, int(r.cycle), int(r.logged_at)) for r in rows])

    def provenance_for_event(self, event_uuid: str) -> List[Dict[str, Any]]:
        """One event's lineage rows, oldest first."""
        return self.backend.provenance_for_event(event_uuid)

    def provenance_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every lineage row carrying one trace id, oldest first."""
        return self.backend.provenance_for_trace(trace_id)

    def provenance_count(self) -> int:
        """Total lineage rows."""
        return self.backend.provenance_count()

    def latest_traced_event(self) -> Optional[str]:
        """The event uuid of the newest lineage row (demo/CLI convenience)."""
        return self.backend.latest_traced_event()

    # -- delta-sync ledger --------------------------------------------------------

    def max_audit_seq(self) -> int:
        """The highest audit-log sequence number written so far (0 if none).

        The audit sequence is the store's monotonic change cursor: every
        save/enrich/delete lands one row, so "what changed since seq S" is a
        complete delta regardless of whether the edit bumped the event's own
        timestamp.  The sharing gateway scans against this cursor.
        """
        return self.backend.max_audit_seq()

    def events_changed_since(self, after_seq: int,
                             until_seq: Optional[int] = None
                             ) -> List[Tuple[str, int]]:
        """Events touched by audit rows in ``(after_seq, until_seq]``.

        Returns ``(event_uuid, last_change_seq)`` pairs ordered by that last
        change (then uuid, for a total deterministic order).  Deleted events
        drop out naturally: only uuids still stored are reported.
        """
        return self.backend.events_changed_since(after_seq, until_seq)

    def changes_since(self, after_seq: int,
                      until_seq: Optional[int] = None,
                      limit: Optional[int] = None) -> List[StoreChange]:
        """The store's change feed: audit rows after ``after_seq``.

        Returns :class:`StoreChange` entries ordered by ``seq`` ascending —
        including ``deleted`` actions, which :meth:`events_changed_since`
        filters out.  One cheap query (no ``IN`` lists, no payloads) that
        costs nothing when nothing changed; incremental rollups poll it
        with a persisted :class:`~repro.core.deltas.DeltaCursor`.
        """
        return [StoreChange(*row) for row in self.backend.changes_since(
            after_seq, until_seq=until_seq, limit=limit)]

    # -- rollup cursors -------------------------------------------------------

    def get_rollup(self, name: str) -> Optional[Tuple[int, str]]:
        """``(position, state)`` of one persisted rollup cursor, or None."""
        return self.backend.get_rollup(name)

    def set_rollup(self, name: str, position: int, state: str = "") -> None:
        """Persist a rollup cursor (stamped on the store clock).

        Lives in the ``rollup_state`` table, deliberately outside the sync
        ledger: federation fingerprints fold ``sync_watermarks()``, and how
        far local view maintenance has read must not perturb them.
        """
        logged_at = int(self._clock.now().timestamp()) \
            if self._clock is not None else 0
        self.backend.set_rollup(name, position, state, logged_at=logged_at)

    def rollup_names(self) -> List[str]:
        """Names of every persisted rollup cursor, sorted."""
        return self.backend.rollup_names()

    def get_sync_watermark(self, entity: str) -> int:
        """The audit-seq watermark of one sync entity (0 when never synced)."""
        return self.backend.get_sync_watermark(entity)

    def set_sync_watermark(self, entity: str, watermark: int) -> None:
        """Persist an entity's watermark (stamped on the store clock)."""
        logged_at = int(self._clock.now().timestamp()) \
            if self._clock is not None else 0
        self.backend.set_sync_watermark(entity, watermark,
                                        logged_at=logged_at)

    def sync_watermarks(self) -> Dict[str, int]:
        """Every persisted entity watermark (entity -> audit seq)."""
        return self.backend.sync_watermarks()

    def get_sync_digests(self, entity: str,
                         uuids: Sequence[str]) -> Dict[str, str]:
        """Last successfully-synced content digests for one entity.

        Returns ``event_uuid -> digest`` for the requested uuids that have a
        ledger row (chunked ``IN (...)`` lookups); absent uuids are simply
        missing from the result.
        """
        return self.backend.get_sync_digests(entity, uuids)

    def set_sync_digests(self, entity: str,
                         digests: Mapping[str, str]) -> None:
        """Record one cycle's synced digests in a single ``executemany``."""
        self.backend.set_sync_digests(entity, digests)

    def sync_digest_count(self, entity: Optional[str] = None) -> int:
        """Ledger rows, optionally for one entity."""
        return self.backend.sync_digest_count(entity)

    def sync_digest_rows(self) -> List[Tuple[str, str, str]]:
        """Every ledger row as ``(entity, event_uuid, digest)``, sorted.

        The full-state view federation fingerprints fold in, so two stores
        agree only when their sync ledgers agree too.
        """
        return self.backend.sync_digest_rows()

    def event_count(self) -> int:
        """Number of stored events (O(1): maintained counter)."""
        return self.backend.event_count()

    def attribute_count(self) -> int:
        """Number of stored attributes (O(1): maintained counter)."""
        return self.backend.attribute_count()

    def list_events(self, limit: Optional[int] = None,
                    published_only: bool = False,
                    since: Optional[dt.datetime] = None) -> List[MispEvent]:
        """Stored events, newest first (``timestamp DESC, uuid``).

        ``since`` pushes a time-window lower bound into the storage query:
        only events with ``timestamp >= since`` are fetched and decoded.
        Stored timestamps are integer epoch seconds (the MISP JSON wire
        format), so the integer prefilter is exact for integer-second
        cutoffs and callers with sub-second cutoffs re-filter in python.
        """
        since_ts = int(since.timestamp()) if since is not None else None
        return [self._decode(blob)
                for blob in self.backend.list_event_blobs(
                    limit=limit, published_only=published_only,
                    since_ts=since_ts)]

    # -- search -------------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        """Exact value search: returns (event_uuid, attribute_uuid) pairs."""
        return self.backend.search_value(value)

    def search_events(self, info_substring: Optional[str] = None,
                      tag: Optional[str] = None,
                      attribute_type: Optional[str] = None,
                      value: Optional[str] = None) -> List[MispEvent]:
        """Filtered event search across the relational tables."""
        return [self._decode(blob)
                for blob in self.backend.search_event_blobs(
                    info_substring=info_substring, tag=tag,
                    attribute_type=attribute_type, value=value)]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        """(event_uuid, attribute_uuid) of correlatable rows matching value."""
        return self.backend.correlatable_attributes(
            value, exclude_event=exclude_event)

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        """Resolve many correlatable values with chunked ``IN`` queries.

        Returns ``value -> [(event_uuid, attribute_uuid), ...]`` (insertion
        order per value, matching :meth:`correlatable_attributes`); values
        with no match map to an empty list.
        """
        return self.backend.correlatable_attributes_many(values)

    # -- correlations --------------------------------------------------------------

    def save_correlation(self, source_attribute: str, target_attribute: str,
                         source_event: str, target_event: str, value: str) -> None:
        """Persist one correlation edge (idempotent)."""
        self.save_correlations([
            (source_attribute, target_attribute, source_event, target_event,
             value)])

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        """Persist a batch of correlation edges in one transaction.

        Each edge is ``(source_attribute, target_attribute, source_event,
        target_event, value)``; duplicates are ignored.  Returns the number
        of edges actually inserted.
        """
        inserted = self.backend.save_correlations(edges)
        if inserted > 0:
            self._m_correlations.inc(inserted)
        return inserted

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        """Correlation rows touching one event."""
        return self.backend.correlations_for_event(event_uuid)

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        """Correlation rows touching each of many events, batched.

        Returns ``uuid -> rows`` for every requested uuid (empty list when
        an event has no correlations); a row linking two requested events
        appears under both.  Row order per event matches
        :meth:`correlations_for_event` (insertion order).
        """
        return self.backend.correlations_for_events(uuids)

    def correlation_count(self) -> int:
        """Total stored correlation edges (O(1): maintained counter)."""
        return self.backend.correlation_count()
