"""MISP galaxies: curated clusters of contextual threat knowledge.

A *galaxy* groups clusters (threat actors, tools, ransomware families...)
with synonyms and metadata; events are annotated with galaxy tags like
``misp-galaxy:threat-actor="Sofacy"``.  This module carries a condensed
transcription of well-known threat-actor and tool clusters, a matcher that
finds cluster mentions (by value or synonym) in event text, and the tagger
that stamps matching events — the contextual enrichment MISP deployments
get from the misp-galaxy project.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import ValidationError
from .model import MispEvent


@dataclass(frozen=True)
class GalaxyCluster:
    """One cluster: canonical value, synonyms and metadata."""

    value: str
    galaxy_type: str
    description: str = ""
    synonyms: Tuple[str, ...] = ()
    meta: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.value:
            raise ValidationError("galaxy cluster needs a value")

    def names(self) -> Set[str]:
        """All lowercase names this cluster answers to."""
        return {self.value.lower(), *(s.lower() for s in self.synonyms)}

    def tag(self) -> str:
        """Add a tag to a stored event."""
        return f'misp-galaxy:{self.galaxy_type}="{self.value}"'


@dataclass(frozen=True)
class Galaxy:
    """A named collection of clusters of one type."""

    name: str
    galaxy_type: str
    clusters: Tuple[GalaxyCluster, ...]

    def find(self, name: str) -> Optional[GalaxyCluster]:
        """Find the set representative (with path compression)."""
        needle = name.lower()
        for cluster in self.clusters:
            if needle in cluster.names():
                return cluster
        return None


#: Condensed transcription of real misp-galaxy threat-actor clusters.
THREAT_ACTOR_GALAXY = Galaxy(
    name="Threat Actor",
    galaxy_type="threat-actor",
    clusters=(
        GalaxyCluster(
            value="Sofacy", galaxy_type="threat-actor",
            description="Russian-attributed espionage group",
            synonyms=("APT28", "Fancy Bear", "Pawn Storm", "Sednit",
                      "STRONTIUM"),
            meta={"country": "RU", "motive": "espionage"}),
        GalaxyCluster(
            value="APT29", galaxy_type="threat-actor",
            description="Russian-attributed espionage group",
            synonyms=("Cozy Bear", "The Dukes", "NOBELIUM"),
            meta={"country": "RU", "motive": "espionage"}),
        GalaxyCluster(
            value="Lazarus Group", galaxy_type="threat-actor",
            description="North-Korean-attributed group",
            synonyms=("Lazarus", "Hidden Cobra", "ZINC"),
            meta={"country": "KP", "motive": "financial-espionage"}),
        GalaxyCluster(
            value="FIN7", galaxy_type="threat-actor",
            description="Financially motivated intrusion set",
            synonyms=("Carbanak", "Carbon Spider"),
            meta={"motive": "financial"}),
        GalaxyCluster(
            value="Turla", galaxy_type="threat-actor",
            description="Espionage group with satellite C2 tradecraft",
            synonyms=("Snake", "Uroburos", "Venomous Bear"),
            meta={"country": "RU", "motive": "espionage"}),
    ),
)

#: Dual-use tooling clusters.
TOOL_GALAXY = Galaxy(
    name="Tool",
    galaxy_type="tool",
    clusters=(
        GalaxyCluster(value="Mimikatz", galaxy_type="tool",
                      synonyms=("mimikatz",),
                      description="credential dumping tool"),
        GalaxyCluster(value="Cobalt Strike", galaxy_type="tool",
                      synonyms=("cobaltstrike", "beacon"),
                      description="commercial adversary emulation framework"),
        GalaxyCluster(value="Emotet", galaxy_type="tool",
                      synonyms=("geodo", "heodo"),
                      description="loader / banking trojan"),
    ),
)

BUILTIN_GALAXIES: Tuple[Galaxy, ...] = (THREAT_ACTOR_GALAXY, TOOL_GALAXY)


class GalaxyMatcher:
    """Finds cluster mentions in free text (word-bounded, synonyms too)."""

    def __init__(self, galaxies: Iterable[Galaxy] = BUILTIN_GALAXIES) -> None:
        self._galaxies = list(galaxies)
        self._names: List[Tuple[str, GalaxyCluster]] = []
        for galaxy in self._galaxies:
            for cluster in galaxy.clusters:
                for name in cluster.names():
                    self._names.append((name, cluster))
        # Longest names first so 'Lazarus Group' beats 'Lazarus'.
        self._names.sort(key=lambda pair: -len(pair[0]))

    @property
    def galaxies(self) -> List[Galaxy]:
        """The galaxies this matcher searches."""
        return list(self._galaxies)

    def find_clusters(self, text: str) -> List[GalaxyCluster]:
        """All distinct clusters mentioned in the text."""
        lowered = text.lower()
        found: List[GalaxyCluster] = []
        seen: Set[str] = set()
        for name, cluster in self._names:
            if cluster.value in seen:
                continue
            index = lowered.find(name)
            while index != -1:
                end = index + len(name)
                before_ok = index == 0 or not lowered[index - 1].isalnum()
                after_ok = end >= len(lowered) or not lowered[end].isalnum()
                if before_ok and after_ok:
                    found.append(cluster)
                    seen.add(cluster.value)
                    break
                index = lowered.find(name, index + 1)
        return found

    def scan_event(self, event: MispEvent) -> List[GalaxyCluster]:
        """All clusters an event's text mentions (pure: no mutation).

        Reads the info line plus every attribute value and comment.  Safe to
        call from worker threads — tagging is the separate, mutating step.
        """
        text = event.info + " " + " ".join(
            attribute.value + " " + attribute.comment
            for attribute in event.all_attributes())
        return self.find_clusters(text)

    def tag_event(self, event: MispEvent) -> List[GalaxyCluster]:
        """Scan an event's text and stamp galaxy tags; returns the matches."""
        clusters = self.scan_event(event)
        for cluster in clusters:
            event.add_tag(cluster.tag())
        return clusters


def clusters_of(event: MispEvent) -> List[str]:
    """Galaxy tag values already on an event."""
    out: List[str] = []
    for tag in event.tags:
        if tag.name.startswith("misp-galaxy:") and tag.name.endswith('"'):
            out.append(tag.name.split('="', 1)[1][:-1])
    return out
