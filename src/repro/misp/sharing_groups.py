"""MISP sharing groups (distribution level 4).

A sharing group names the exact set of organisations an event may reach —
the finest-grained distribution control MISP offers, used for sensitive
intelligence that community-level levels would overshare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set

from ..errors import SharingError, ValidationError
from ..ids import IdGenerator


@dataclass
class SharingGroup:
    """A named, closed set of organisations."""

    name: str
    organisations: Set[str]
    uuid: Optional[str] = None
    releasable_to_self: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("sharing group needs a name")
        if not self.organisations:
            raise ValidationError("sharing group needs at least one organisation")
        self.organisations = set(self.organisations)
        if self.uuid is None:
            self.uuid = IdGenerator().uuid()

    def add_organisation(self, org: str) -> None:
        """Add an organisation to the group."""
        self.organisations.add(org)

    def remove_organisation(self, org: str) -> None:
        """Remove a member (never the last one)."""
        if org not in self.organisations:
            raise SharingError(f"{org!r} is not in sharing group {self.name!r}")
        if len(self.organisations) == 1:
            raise SharingError("cannot remove the last organisation")
        self.organisations.discard(org)

    def releasable_to(self, org: str) -> bool:
        """Whether an organisation may receive group events."""
        return org in self.organisations

    def to_dict(self) -> dict:
        """Serialize to a JSON-ready dict."""
        return {
            "uuid": self.uuid,
            "name": self.name,
            "organisations": sorted(self.organisations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SharingGroup":
        """Revive an instance from its dict form."""
        return cls(
            name=data.get("name", ""),
            organisations=set(data.get("organisations", [])),
            uuid=data.get("uuid"),
        )
