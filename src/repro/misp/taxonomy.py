"""MISP taxonomies and machine tags.

MISP tags follow the *machine tag* convention
``namespace:predicate="value"`` (value optional).  The platform already
uses several (``caop:ioc="composed"``, ``tlp:amber``); this module gives
them a real model: parsing, rendering, and a taxonomy registry that can
validate tags against declared predicates/values — the same role MISP's
taxonomy library plays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ValidationError

_MACHINE_TAG_RE = re.compile(
    r'^(?P<namespace>[a-z0-9._-]+):(?P<predicate>[a-zA-Z0-9._-]+)'
    r'(?:="(?P<value>[^"]*)")?$'
)


@dataclass(frozen=True)
class MachineTag:
    """A parsed ``namespace:predicate="value"`` tag."""

    namespace: str
    predicate: str
    value: Optional[str] = None

    def render(self) -> str:
        """Render this view as printable text."""
        if self.value is None:
            return f"{self.namespace}:{self.predicate}"
        return f'{self.namespace}:{self.predicate}="{self.value}"'

    def __str__(self) -> str:
        return self.render()


def parse_machine_tag(text: str) -> Optional[MachineTag]:
    """Parse a tag string; returns None for free-form (non-machine) tags."""
    match = _MACHINE_TAG_RE.match(text.strip())
    if match is None:
        return None
    return MachineTag(
        namespace=match.group("namespace"),
        predicate=match.group("predicate"),
        value=match.group("value"),
    )


@dataclass(frozen=True)
class TaxonomyPredicate:
    """One predicate of a taxonomy and its permitted values (open if empty)."""

    name: str
    values: Tuple[str, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class Taxonomy:
    """A namespace with its declared predicates."""

    namespace: str
    description: str
    predicates: Tuple[TaxonomyPredicate, ...]

    def predicate(self, name: str) -> Optional[TaxonomyPredicate]:
        """Look up a predicate by name."""
        for predicate in self.predicates:
            if predicate.name == name:
                return predicate
        return None

    def validate(self, tag: MachineTag) -> bool:
        """Is this machine tag well-formed under the taxonomy?"""
        if tag.namespace != self.namespace:
            return False
        predicate = self.predicate(tag.predicate)
        if predicate is None:
            return False
        if predicate.values and tag.value not in predicate.values:
            return False
        if not predicate.values and tag.value is None:
            return True
        return True


#: The built-in taxonomies the platform stamps on events.
BUILTIN_TAXONOMIES: Tuple[Taxonomy, ...] = (
    Taxonomy(
        namespace="tlp",
        description="Traffic Light Protocol",
        predicates=(
            TaxonomyPredicate("red"), TaxonomyPredicate("amber"),
            TaxonomyPredicate("green"), TaxonomyPredicate("white"),
        ),
    ),
    Taxonomy(
        namespace="caop",
        description="Context-Aware OSINT Platform lifecycle markers",
        predicates=(
            TaxonomyPredicate("ioc", values=("composed", "enriched")),
            TaxonomyPredicate("source", values=("osint", "infrastructure")),
            TaxonomyPredicate("relevance", values=("relevant", "irrelevant")),
            TaxonomyPredicate("category"),
            TaxonomyPredicate("feed"),
            TaxonomyPredicate("sighting", values=("infrastructure",)),
        ),
    ),
)


class TaxonomyRegistry:
    """Known taxonomies; validates tags and classifies events' tag sets."""

    def __init__(self, taxonomies: Iterable[Taxonomy] = BUILTIN_TAXONOMIES) -> None:
        self._by_namespace: Dict[str, Taxonomy] = {}
        for taxonomy in taxonomies:
            self.register(taxonomy)

    def register(self, taxonomy: Taxonomy) -> None:
        """Register a new entry; rejects duplicates."""
        if taxonomy.namespace in self._by_namespace:
            raise ValidationError(
                f"taxonomy {taxonomy.namespace!r} already registered")
        self._by_namespace[taxonomy.namespace] = taxonomy

    def get(self, namespace: str) -> Optional[Taxonomy]:
        """Look up an entry by key; None when absent."""
        return self._by_namespace.get(namespace)

    def namespaces(self) -> List[str]:
        """The registered taxonomy namespaces."""
        return sorted(self._by_namespace)

    def validate_tag(self, text: str) -> bool:
        """True when the tag is free-form OR a valid known machine tag.

        Machine tags in *unknown* namespaces are accepted (MISP behaviour:
        taxonomies are advisory); machine tags in known namespaces must
        validate.
        """
        tag = parse_machine_tag(text)
        if tag is None:
            return True
        taxonomy = self._by_namespace.get(tag.namespace)
        if taxonomy is None:
            return True
        return taxonomy.validate(tag)

    def audit_event(self, event) -> List[str]:
        """Return the event's tags that FAIL validation (empty = clean)."""
        return [tag.name for tag in event.tags
                if not self.validate_tag(tag.name)]
