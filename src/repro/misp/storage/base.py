"""Storage backend protocol and shared helpers for the MISP store.

:class:`~repro.misp.store.MispStore` is a thin facade: it turns
:class:`~repro.misp.model.MispEvent` objects into plain rows, emits metrics,
and delegates every byte of persistence to a :class:`StorageBackend`.  Three
implementations exist:

- :class:`~repro.misp.storage.sqlite.SQLiteBackend` — the classic single-file
  (or ``:memory:``) SQLite store;
- :class:`~repro.misp.storage.sharded.ShardedSQLiteBackend` — N SQLite shards
  keyed by :func:`shard_of` plus a global catalog for the audit log, sync
  ledger, provenance, counters and the value index;
- :class:`~repro.misp.storage.memory.InMemoryBackend` — pure-python dicts for
  benches and unit tests.

Determinism contract (docs/PERFORMANCE.md): for the same operation sequence,
every backend — and every shard count — must produce identical audit
sequences, correlation edge sets, sync watermarks/digests and provenance
rows.  Ordered reads are fully specified (``timestamp DESC, uuid`` for event
listings; insertion order for value probes and correlation rows) so no
backend leans on accidental scan order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: SQLite's conservative bound-variable ceiling (``SQLITE_MAX_VARIABLE_NUMBER``
#: is 999 on older builds; newer ones allow 32766).  Every chunked ``IN (...)``
#: query derives its chunk size from this budget instead of hard-coding one,
#: so a query that binds two placeholders per item — or reserves slots for
#: fixed parameters — can never overflow the limit.
MAX_BOUND_VARS = 999

#: Working budget: stay under the ceiling with headroom for dialect quirks.
VAR_BUDGET = 960


def chunk_size(reserved: int = 0, per_item: int = 1) -> int:
    """Largest per-query item count that keeps bound variables in budget.

    ``reserved`` counts fixed parameters bound alongside the ``IN`` list
    (e.g. the ``entity`` in a sync-digest probe); ``per_item`` is how many
    placeholders each item expands to (2 when a uuid appears in two ``IN``
    lists of the same query).
    """
    return max(1, (VAR_BUDGET - reserved) // per_item)


def chunks(items: Sequence, size: int) -> Iterable[Sequence]:
    """Yield ``items`` in slices of at most ``size``."""
    for start in range(0, len(items), size):
        yield items[start:start + size]


def shard_of(event_uuid: str, shard_count: int) -> int:
    """Deterministic, stable shard placement for one event uuid.

    Uses a sha256 prefix rather than ``hash()`` so placement is identical
    across processes, python versions and ``PYTHONHASHSEED`` values — the
    same discipline the retry-jitter and worker-pool RNGs follow.
    """
    if shard_count <= 1:
        return 0
    digest = hashlib.sha256(event_uuid.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % shard_count


@dataclass
class PersistBatch:
    """One ``save_events`` cycle reduced to plain rows.

    The facade builds these from :class:`~repro.misp.model.MispEvent`
    objects; backends only ever see tuples, so they stay import-light and
    trivially comparable across implementations.

    Row shapes (matching the classic schema column order):

    - ``audit_rows``: ``(event_uuid, action, detail, logged_at)``
    - ``event_rows``: ``(uuid, info, date, org, threat_level_id, analysis,
      distribution, published, timestamp, blob)``
    - ``attribute_rows``: ``(uuid, event_uuid, type, category, value,
      to_ids, correlatable, timestamp)``
    - ``tag_rows``: ``(event_uuid, name)``
    """

    uuids: List[str]
    audit_rows: List[Tuple]
    event_rows: List[Tuple]
    attribute_rows: List[Tuple]
    tag_rows: List[Tuple]
    #: How many of ``uuids`` did not exist before this batch (counter delta).
    new_events: int = 0


@dataclass
class BackendInfo:
    """Static facts the facade exposes as gauges."""

    kind: str
    shard_count: int = 1
    #: Filesystem paths backing the store (empty for in-memory backends).
    paths: List[str] = field(default_factory=list)


class StorageBackend:
    """Interface every MISP storage backend implements.

    This is a plain base class rather than ``typing.Protocol`` so the
    conformance suite can instantiate it for interface checks on python
    3.9.  All methods raise :class:`NotImplementedError` by default.

    Transaction discipline: :meth:`persist_batch`, :meth:`add_provenance`,
    :meth:`save_correlations`, :meth:`set_sync_watermark` and
    :meth:`set_sync_digests` are each atomic per call (one transaction in
    SQLite terms; sharded backends commit their shards serially in shard
    order, catalog last).  Read methods never observe a half-applied batch.
    """

    #: Python→storage round trips issued so far (logical ops for the
    #: in-memory backend).  The facade re-exports this as
    #: ``MispStore.sql_statements`` for the SQL-budget benches.
    sql_statements: int = 0

    # -- lifecycle ----------------------------------------------------------

    def info(self) -> BackendInfo:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- events -------------------------------------------------------------

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        """Which of ``uuids`` are already stored."""
        raise NotImplementedError

    def persist_batch(self, batch: PersistBatch) -> Dict[int, int]:
        """Apply one save cycle atomically; returns events-per-shard."""
        raise NotImplementedError

    def has_event(self, uuid: str) -> bool:
        raise NotImplementedError

    def get_event_blob(self, uuid: str) -> Optional[str]:
        raise NotImplementedError

    def get_event_blobs(self, uuids: Sequence[str]
                        ) -> Dict[str, Optional[str]]:
        """Batch blob fetch preserving request order; absent uuids → None."""
        raise NotImplementedError

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        raise NotImplementedError

    def delete_event(self, uuid: str,
                     logged_at: Optional[int] = None) -> bool:
        """Delete an event; ``logged_at`` stamps the audit row (falls back
        to the deleted event's own timestamp, then 0)."""
        raise NotImplementedError

    def list_event_blobs(self, limit: Optional[int] = None,
                         published_only: bool = False,
                         since_ts: Optional[int] = None) -> List[str]:
        """Blobs ordered by ``timestamp DESC, uuid`` (fully deterministic).

        ``since_ts`` keeps only events whose integer epoch timestamp is
        ``>= since_ts`` — a storage-side prefilter for time-windowed reads.
        """
        raise NotImplementedError

    def event_count(self) -> int:
        """O(1): maintained counter, not ``COUNT(*)``."""
        raise NotImplementedError

    def attribute_count(self) -> int:
        """O(1): maintained counter, not ``COUNT(*)``."""
        raise NotImplementedError

    # -- audit --------------------------------------------------------------

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def audit_count(self) -> int:
        raise NotImplementedError

    def max_audit_seq(self) -> int:
        raise NotImplementedError

    def events_changed_since(self, after_seq: int,
                             until_seq: Optional[int] = None
                             ) -> List[Tuple[str, int]]:
        raise NotImplementedError

    def changes_since(self, after_seq: int,
                      until_seq: Optional[int] = None,
                      limit: Optional[int] = None
                      ) -> List[Tuple[int, str, str, int]]:
        """Raw audit rows ``(seq, event_uuid, action, logged_at)`` after
        ``after_seq``, ordered by seq ascending.

        Unlike :meth:`events_changed_since` this keeps ``deleted`` actions,
        so change-feed consumers can retire state for purged events.
        """
        raise NotImplementedError

    # -- rollup cursors -------------------------------------------------------
    #
    # Named, persisted positions into the audit-seq change feed plus an
    # opaque state blob — the durable half of ``core.deltas``.  Kept in a
    # dedicated ``rollup_state`` table (NOT ``sync_state``) so federation
    # fingerprints, which fold sync watermarks, are unaffected by how far
    # local view maintenance has read.

    def get_rollup(self, name: str) -> Optional[Tuple[int, str]]:
        """``(position, state)`` for one named rollup, or None."""
        raise NotImplementedError

    def set_rollup(self, name: str, position: int, state: str = "",
                   logged_at: int = 0) -> None:
        raise NotImplementedError

    def rollup_names(self) -> List[str]:
        raise NotImplementedError

    # -- provenance ---------------------------------------------------------

    def add_provenance(self, rows: Sequence[Tuple]) -> int:
        """``rows``: ``(trace_id, event_uuid, kind, actor, org, detail,
        cycle, logged_at)`` tuples."""
        raise NotImplementedError

    def provenance_for_event(self, event_uuid: str) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def provenance_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def provenance_count(self) -> int:
        raise NotImplementedError

    def latest_traced_event(self) -> Optional[str]:
        raise NotImplementedError

    # -- delta-sync ledger ---------------------------------------------------

    def get_sync_watermark(self, entity: str) -> int:
        raise NotImplementedError

    def set_sync_watermark(self, entity: str, watermark: int,
                           logged_at: int = 0) -> None:
        raise NotImplementedError

    def sync_watermarks(self) -> Dict[str, int]:
        raise NotImplementedError

    def get_sync_digests(self, entity: str,
                         uuids: Sequence[str]) -> Dict[str, str]:
        raise NotImplementedError

    def set_sync_digests(self, entity: str,
                         digests: Mapping[str, str]) -> None:
        raise NotImplementedError

    def sync_digest_count(self, entity: Optional[str] = None) -> int:
        raise NotImplementedError

    def sync_digest_rows(self) -> List[Tuple[str, str, str]]:
        """Every ledger row as ``(entity, event_uuid, digest)``, sorted."""
        raise NotImplementedError

    # -- search -------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        """(event_uuid, attribute_uuid) pairs in attribute insertion order."""
        raise NotImplementedError

    def search_event_blobs(self, info_substring: Optional[str] = None,
                           tag: Optional[str] = None,
                           attribute_type: Optional[str] = None,
                           value: Optional[str] = None) -> List[str]:
        """Filtered blobs ordered by ``timestamp DESC, uuid``."""
        raise NotImplementedError

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        raise NotImplementedError

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        raise NotImplementedError

    # -- correlations --------------------------------------------------------

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        """Persist edges (idempotent); returns how many were new."""
        raise NotImplementedError

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        raise NotImplementedError

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        raise NotImplementedError

    def correlation_count(self) -> int:
        """O(1): maintained counter, not ``COUNT(*)``."""
        raise NotImplementedError
