"""Hash-sharded SQLite storage backend.

Events are placed on one of N shard databases by
:func:`~repro.misp.storage.base.shard_of` (a sha256 prefix of the event
uuid), so per-event work — blob reads, tag probes and above all
correlation-row scans, which SQLite resolves by walking the whole
``correlations`` table — touches ``1/N`` of the corpus.  A *catalog*
database keeps everything that must stay globally ordered or globally
searchable:

- ``audit_log`` — the monotonic change cursor.  Audit rows for a batch are
  inserted in batch order on the coordinating thread, so the AUTOINCREMENT
  ``seq`` assignment is identical to the single-file store's;
- ``provenance``, ``sync_state``, ``sync_digests``, ``counters``,
  ``store_meta`` — same discipline;
- ``value_index`` — the cross-shard ``value → (shard, event, attribute)``
  map that answers value search and batched correlation probes without
  touching any shard.  Rows for a batch's events are deleted and re-inserted
  in batch order, which reproduces the single-file backend's attribute
  ``rowid`` ordering exactly.

Write protocol (the determinism contract of docs/PERFORMANCE.md): per-shard
row groups may be *staged* concurrently on a small thread pool, but commits
are serial — shards in ascending shard order, catalog last — so any shard
count and any pool width produce the same durable state and the same audit
sequences.  Correlation edges are written to *both* endpoint shards (one
copy when both ends hash to the same shard); the catalog counter tracks
logical edges, so counts match the single-file store byte for byte.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ...errors import StorageError
from .base import (
    BackendInfo,
    PersistBatch,
    StorageBackend,
    chunk_size,
    chunks,
    shard_of,
)
from .sqlite import (
    CATALOG_SCHEMA,
    CountingConnection,
    SHARD_SCHEMA,
    CatalogOps,
    bump_counter,
    init_counters,
    init_meta,
)

#: Extra catalog table unique to the sharded layout.
_VALUE_INDEX_SCHEMA = """
CREATE TABLE IF NOT EXISTS value_index (
    event_uuid TEXT NOT NULL,
    attribute_uuid TEXT NOT NULL,
    value TEXT NOT NULL,
    type TEXT NOT NULL,
    correlatable INTEGER NOT NULL,
    shard INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_value_index_value_type
    ON value_index(value, type);
CREATE INDEX IF NOT EXISTS idx_value_index_value_corr
    ON value_index(value, correlatable);
CREATE INDEX IF NOT EXISTS idx_value_index_event ON value_index(event_uuid);
"""


def shard_path(path: str, shard: int) -> str:
    """Filesystem path of one shard database."""
    return f"{path}.shard-{shard:02d}"


class ShardedSQLiteBackend(CatalogOps, StorageBackend):
    """N-shard SQLite store with a global catalog database.

    ``path`` names the catalog; shards live beside it as
    ``<path>.shard-NN``.  ``path=":memory:"`` gives every shard its own
    private in-memory database (useful for benches; not shared between
    backends).  ``stage_workers`` bounds the thread pool that stages
    per-shard writes; commits are always serial regardless.
    """

    def __init__(self, path: str = ":memory:", shards: int = 4,
                 cache_pages: Optional[int] = None,
                 stage_workers: Optional[int] = None) -> None:
        if shards < 2:
            raise StorageError(
                "ShardedSQLiteBackend needs >= 2 shards;"
                " use SQLiteBackend for a single shard")
        self._path = path
        self._shards = int(shards)
        self._cat = CountingConnection(path, cache_pages=cache_pages)
        self._cat.executescript(CATALOG_SCHEMA)
        self._cat.executescript(_VALUE_INDEX_SCHEMA)
        init_meta(self._cat, shards=self._shards)
        self._conns: List[CountingConnection] = []
        for shard in range(self._shards):
            conn = CountingConnection(
                ":memory:" if path == ":memory:" else shard_path(path, shard),
                cache_pages=cache_pages)
            conn.executescript(SHARD_SCHEMA)
            self._conns.append(conn)
        init_counters(self._cat, {
            "events": sum(
                c.execute("SELECT COUNT(*) FROM events").fetchone()[0]
                for c in self._conns),
            "attributes": self._cat.execute(
                "SELECT COUNT(*) FROM value_index").fetchone()[0],
            "correlations": self._count_logical_correlations(),
        })
        workers = stage_workers if stage_workers is not None \
            else min(self._shards, 8)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix="caop-store-shard") if workers > 1 else None

    def _count_logical_correlations(self) -> int:
        # Mirrored rows mean a raw sum double-counts cross-shard edges; an
        # edge's primary copy is the one on its *source* event's shard.
        total = 0
        for shard, conn in enumerate(self._conns):
            rows = conn.execute(
                "SELECT source_event FROM correlations").fetchall()
            total += sum(
                1 for (source_event,) in rows
                if shard_of(source_event, self._shards) == shard)
        return total

    def _shard_for(self, event_uuid: str) -> int:
        return shard_of(event_uuid, self._shards)

    def _group_by_shard(self, uuids: Sequence[str]) -> Dict[int, List[str]]:
        grouped: Dict[int, List[str]] = {}
        for uuid in uuids:
            grouped.setdefault(self._shard_for(uuid), []).append(uuid)
        return grouped

    # -- lifecycle ----------------------------------------------------------

    def info(self) -> BackendInfo:
        paths: List[str] = []
        if self._path != ":memory:":
            paths = [self._path] + [
                shard_path(self._path, s) for s in range(self._shards)]
        return BackendInfo(
            kind="sharded-sqlite", shard_count=self._shards, paths=paths)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for conn in self._conns:
            conn.close()
        self._cat.close()

    @property
    def sql_statements(self) -> int:  # type: ignore[override]
        return self._cat.statements + sum(
            conn.statements for conn in self._conns)

    def query_plan(self, sql: str, params: Sequence = ()) -> str:
        """The *catalog* planner's choice (value probes run there)."""
        return self._cat.query_plan(sql, params)

    # -- events -------------------------------------------------------------

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        existing: Set[str] = set()
        for shard, members in sorted(self._group_by_shard(uuids).items()):
            conn = self._conns[shard]
            for chunk in chunks(members, chunk_size()):
                placeholders = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT uuid FROM events WHERE uuid IN ({placeholders})",
                    chunk).fetchall()
                existing.update(row[0] for row in rows)
        return existing

    def persist_batch(self, batch: PersistBatch) -> Dict[int, int]:
        # Split every row group by its event's shard, preserving batch order
        # inside each group (matches single-file rowid order per shard).
        shard_events: Dict[int, List[Tuple]] = {}
        shard_attrs: Dict[int, List[Tuple]] = {}
        shard_tags: Dict[int, List[Tuple]] = {}
        shard_uuids: Dict[int, List[str]] = {}
        per_shard_counts: Dict[int, int] = {}
        for uuid in batch.uuids:
            shard = self._shard_for(uuid)
            shard_uuids.setdefault(shard, []).append(uuid)
            per_shard_counts[shard] = per_shard_counts.get(shard, 0) + 1
        for row in batch.event_rows:
            shard_events.setdefault(self._shard_for(row[0]), []).append(row)
        for row in batch.attribute_rows:
            shard_attrs.setdefault(self._shard_for(row[1]), []).append(row)
        for row in batch.tag_rows:
            shard_tags.setdefault(self._shard_for(row[0]), []).append(row)

        def stage_shard(shard: int) -> None:
            conn = self._conns[shard]
            uuids = shard_uuids.get(shard, [])
            conn.executemany(
                "INSERT OR REPLACE INTO events "
                "(uuid, info, date, org, threat_level_id, analysis,"
                " distribution, published, timestamp, blob)"
                " VALUES (?,?,?,?,?,?,?,?,?,?)",
                shard_events.get(shard, []))
            conn.executemany(
                "DELETE FROM attributes WHERE event_uuid = ?",
                [(uuid,) for uuid in uuids])
            conn.executemany(
                "DELETE FROM event_tags WHERE event_uuid = ?",
                [(uuid,) for uuid in uuids])
            conn.executemany(
                "INSERT OR REPLACE INTO attributes "
                "(uuid, event_uuid, type, category, value, to_ids,"
                " correlatable, timestamp) VALUES (?,?,?,?,?,?,?,?)",
                shard_attrs.get(shard, []))
            tags = shard_tags.get(shard, [])
            if tags:
                conn.executemany(
                    "INSERT OR IGNORE INTO event_tags (event_uuid, name)"
                    " VALUES (?,?)", tags)

        touched = sorted(shard_uuids)
        try:
            if self._pool is not None and len(touched) > 1:
                list(self._pool.map(stage_shard, touched))
            else:
                for shard in touched:
                    stage_shard(shard)
            # Catalog work stays on the coordinating thread: audit seq
            # assignment and value_index rowids follow batch order exactly.
            cat = self._cat
            cat.executemany(
                "INSERT INTO audit_log (event_uuid, action, detail,"
                " logged_at) VALUES (?,?,?,?)", batch.audit_rows)
            before = cat.total_changes
            cat.executemany(
                "DELETE FROM value_index WHERE event_uuid = ?",
                [(uuid,) for uuid in batch.uuids])
            deleted_attributes = cat.total_changes - before
            cat.executemany(
                "INSERT INTO value_index (event_uuid, attribute_uuid,"
                " value, type, correlatable, shard) VALUES (?,?,?,?,?,?)",
                [(row[1], row[0], row[4], row[2], row[6],
                  self._shard_for(row[1])) for row in batch.attribute_rows])
            bump_counter(cat, "events", batch.new_events)
            bump_counter(cat, "attributes",
                         len(batch.attribute_rows) - deleted_attributes)
        except BaseException:
            for shard in touched:
                self._conns[shard].rollback()
            self._cat.rollback()
            raise
        # Serial commits in deterministic order: shards ascending, catalog
        # last, so readers never observe catalog state ahead of shard state.
        for shard in touched:
            self._conns[shard].commit()
        self._cat.commit()
        return {shard: per_shard_counts[shard] for shard in touched}

    def has_event(self, uuid: str) -> bool:
        conn = self._conns[self._shard_for(uuid)]
        row = conn.execute(
            "SELECT 1 FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row is not None

    def get_event_blob(self, uuid: str) -> Optional[str]:
        conn = self._conns[self._shard_for(uuid)]
        row = conn.execute(
            "SELECT blob FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row[0] if row is not None else None

    def get_event_blobs(self, uuids: Sequence[str]
                        ) -> Dict[str, Optional[str]]:
        result: Dict[str, Optional[str]] = {uuid: None for uuid in uuids}
        for shard, members in sorted(self._group_by_shard(
                list(result)).items()):
            conn = self._conns[shard]
            for chunk in chunks(members, chunk_size()):
                placeholders = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT uuid, blob FROM events WHERE uuid IN"
                    f" ({placeholders})", chunk).fetchall()
                for uuid, blob in rows:
                    result[uuid] = blob
        return result

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        unique = list(dict.fromkeys(uuids))
        found: Set[str] = set()
        for shard, members in sorted(self._group_by_shard(unique).items()):
            conn = self._conns[shard]
            for chunk in chunks(members, chunk_size(reserved=1)):
                placeholders = ",".join("?" * len(chunk))
                rows = conn.execute(
                    "SELECT DISTINCT event_uuid FROM event_tags"
                    f" WHERE name = ? AND event_uuid IN ({placeholders})",
                    [tag, *chunk]).fetchall()
                found.update(row[0] for row in rows)
        return found

    def delete_event(self, uuid: str,
                     logged_at: Optional[int] = None) -> bool:
        shard = self._shard_for(uuid)
        conn = self._conns[shard]
        cat = self._cat
        try:
            row = conn.execute(
                "SELECT timestamp FROM events WHERE uuid = ?",
                (uuid,)).fetchone()
            attributes = cat.execute(
                "SELECT COUNT(*) FROM value_index WHERE event_uuid = ?",
                (uuid,)).fetchone()[0]
            cursor = conn.execute(
                "DELETE FROM events WHERE uuid = ?", (uuid,))
            deleted = cursor.rowcount > 0
            if deleted:
                if logged_at is None:
                    logged_at = int(row[0]) if row is not None else 0
                cat.execute(
                    "INSERT INTO audit_log (event_uuid, action, detail,"
                    " logged_at) VALUES (?,?,?,?)",
                    (uuid, "deleted", "", logged_at))
                cat.execute(
                    "DELETE FROM value_index WHERE event_uuid = ?", (uuid,))
                bump_counter(cat, "events", -1)
                bump_counter(cat, "attributes", -attributes)
        except BaseException:
            conn.rollback()
            cat.rollback()
            raise
        conn.commit()
        cat.commit()
        return deleted

    def list_event_blobs(self, limit: Optional[int] = None,
                         published_only: bool = False,
                         since_ts: Optional[int] = None) -> List[str]:
        # Each shard pre-sorts (and pre-limits) its slice; the merge re-sorts
        # the union on the same fully-specified key, so the result is
        # identical to the single-file backend's.
        query = "SELECT blob, timestamp, uuid FROM events"
        params: List[Any] = []
        clauses: List[str] = []
        if published_only:
            clauses.append("published = 1")
        if since_ts is not None:
            clauses.append("timestamp >= ?")
            params.append(int(since_ts))
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY timestamp DESC, uuid"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        merged: List[Tuple[int, str, str]] = []
        for conn in self._conns:
            for blob, timestamp, uuid in conn.execute(
                    query, params).fetchall():
                merged.append((-int(timestamp), uuid, blob))
        merged.sort(key=lambda row: (row[0], row[1]))
        blobs = [row[2] for row in merged]
        return blobs[:int(limit)] if limit is not None else blobs

    # -- search -------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        rows = self._cat.execute(
            "SELECT event_uuid, attribute_uuid FROM value_index"
            " WHERE value = ? ORDER BY rowid", (value,)).fetchall()
        return [(r[0], r[1]) for r in rows]

    def search_event_blobs(self, info_substring: Optional[str] = None,
                           tag: Optional[str] = None,
                           attribute_type: Optional[str] = None,
                           value: Optional[str] = None) -> List[str]:
        query = "SELECT DISTINCT e.blob, e.timestamp, e.uuid FROM events e"
        clauses: List[str] = []
        params: List[Any] = []
        if tag is not None:
            query += " JOIN event_tags t ON t.event_uuid = e.uuid"
            clauses.append("t.name = ?")
            params.append(tag)
        if attribute_type is not None or value is not None:
            query += " JOIN attributes a ON a.event_uuid = e.uuid"
            if attribute_type is not None:
                clauses.append("a.type = ?")
                params.append(attribute_type)
            if value is not None:
                clauses.append("a.value = ?")
                params.append(value)
        if info_substring is not None:
            clauses.append("e.info LIKE ?")
            params.append(f"%{info_substring}%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        merged: List[Tuple[int, str, str]] = []
        for conn in self._conns:
            for blob, timestamp, uuid in conn.execute(
                    query, params).fetchall():
                merged.append((-int(timestamp), uuid, blob))
        merged.sort(key=lambda row: (row[0], row[1]))
        return [row[2] for row in merged]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        query = ("SELECT event_uuid, attribute_uuid FROM value_index"
                 " WHERE value = ? AND correlatable = 1")
        params: List[Any] = [value]
        if exclude_event is not None:
            query += " AND event_uuid != ?"
            params.append(exclude_event)
        query += " ORDER BY rowid"
        return [(r[0], r[1])
                for r in self._cat.execute(query, params).fetchall()]

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        result: Dict[str, List[Tuple[str, str]]] = {
            value: [] for value in values}
        unique = list(result)
        for chunk in chunks(unique, chunk_size()):
            placeholders = ",".join("?" * len(chunk))
            rows = self._cat.execute(
                "SELECT value, event_uuid, attribute_uuid FROM value_index"
                f" WHERE correlatable = 1 AND value IN ({placeholders})"
                " ORDER BY rowid", chunk).fetchall()
            for value, event_uuid, attribute_uuid in rows:
                result[value].append((event_uuid, attribute_uuid))
        return result

    # -- correlations --------------------------------------------------------

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        edges = list(edges)
        if not edges:
            return 0
        # Build per-shard row lists in original edge order; a cross-shard
        # edge contributes its primary copy (source shard) and its mirror
        # (target shard) at the same position, so per-shard rowid order
        # matches the single-file store's per-event row order.
        shard_rows: Dict[int, List[Tuple]] = {}
        src_keys: Dict[int, List[Tuple[str, str]]] = {}
        for edge in edges:
            src_shard = self._shard_for(edge[2])
            tgt_shard = self._shard_for(edge[3])
            shard_rows.setdefault(src_shard, []).append(edge)
            src_keys.setdefault(src_shard, []).append((edge[0], edge[1]))
            if tgt_shard != src_shard:
                shard_rows.setdefault(tgt_shard, []).append(edge)
        # Count *logical* inserts by probing which primary keys already
        # exist on each edge's source shard (the mapping attribute→event→
        # shard is fixed, so a key's primary copy always lives there).
        inserted = 0
        seen: Set[Tuple[str, str]] = set()
        for shard, keys in sorted(src_keys.items()):
            conn = self._conns[shard]
            existing: Set[Tuple[str, str]] = set()
            unique_sources = list(dict.fromkeys(key[0] for key in keys))
            for chunk in chunks(unique_sources, chunk_size()):
                placeholders = ",".join("?" * len(chunk))
                rows = conn.execute(
                    "SELECT source_attribute, target_attribute"
                    " FROM correlations WHERE source_attribute IN"
                    f" ({placeholders})", chunk).fetchall()
                existing.update((r[0], r[1]) for r in rows)
            for key in keys:
                if key not in existing and key not in seen:
                    inserted += 1
                    seen.add(key)
        touched = sorted(shard_rows)
        try:
            for shard in touched:
                self._conns[shard].executemany(
                    "INSERT OR IGNORE INTO correlations VALUES (?,?,?,?,?)",
                    shard_rows[shard])
            bump_counter(self._cat, "correlations", inserted)
        except BaseException:
            for shard in touched:
                self._conns[shard].rollback()
            self._cat.rollback()
            raise
        for shard in touched:
            self._conns[shard].commit()
        self._cat.commit()
        return inserted

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        # The whole point of sharding: this scan walks one shard's
        # correlation rows (every edge touching an event is mirrored onto
        # that event's shard), i.e. ~1/N of the corpus.
        conn = self._conns[self._shard_for(event_uuid)]
        rows = conn.execute(
            "SELECT source_attribute, target_attribute, source_event,"
            " target_event, value FROM correlations"
            " WHERE source_event = ? OR target_event = ?"
            " ORDER BY rowid",
            (event_uuid, event_uuid)).fetchall()
        return [
            {
                "source_attribute": r[0], "target_attribute": r[1],
                "source_event": r[2], "target_event": r[3], "value": r[4],
            }
            for r in rows
        ]

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        result: Dict[str, List[Dict[str, str]]] = {uuid: [] for uuid in uuids}
        for shard, members in sorted(self._group_by_shard(
                list(result)).items()):
            conn = self._conns[shard]
            for chunk in chunks(members, chunk_size(per_item=2)):
                chunk_set = set(chunk)
                placeholders = ",".join("?" * len(chunk))
                rows = conn.execute(
                    "SELECT source_attribute, target_attribute,"
                    " source_event, target_event, value FROM correlations"
                    f" WHERE source_event IN ({placeholders})"
                    f" OR target_event IN ({placeholders})"
                    " ORDER BY rowid", [*chunk, *chunk]).fetchall()
                for r in rows:
                    row = {
                        "source_attribute": r[0], "target_attribute": r[1],
                        "source_event": r[2], "target_event": r[3],
                        "value": r[4],
                    }
                    # Attach only to this shard's chunk members: a mirrored
                    # row also surfaces on the other endpoint's shard scan.
                    for side in {r[2], r[3]}:
                        if side in chunk_set and \
                                self._shard_for(side) == shard:
                            result[side].append(row)
        return result
