"""Pure-python in-memory storage backend.

Dicts and lists instead of SQLite: no files, no SQL, no connection setup —
the fastest substrate for unit tests and the zero-I/O baseline for
``bench_x18_store_scaling``.  Every ordered read reproduces the SQLite
backends' fully-specified orderings (``timestamp DESC, uuid`` for event
listings, insertion order for attribute probes and correlation rows), so
the conformance suite runs the same assertions against all three backends.

``sql_statements`` counts *logical* store operations (one per public call
plus one per chunk-equivalent), keeping SQL-budget comparisons meaningful.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .base import BackendInfo, PersistBatch, StorageBackend


class InMemoryBackend(StorageBackend):
    """Dict-backed store with the same observable behaviour as SQLite."""

    def __init__(self) -> None:
        self.sql_statements = 0
        #: uuid -> event row tuple (schema column order; blob last).
        self._events: Dict[str, Tuple] = {}
        #: Attribute rows in insertion order (the "rowid" ordering).
        self._attributes: List[Tuple] = []
        #: event_uuid -> ordered tag-name set (dict keys keep order).
        self._tags: Dict[str, Dict[str, None]] = {}
        #: (seq, event_uuid, action, detail, logged_at) rows.
        self._audit: List[Tuple[int, str, str, str, int]] = []
        self._audit_seq = 0
        #: (source_attribute, target_attribute) -> full edge row, ordered.
        self._correlations: Dict[Tuple[str, str], Tuple] = {}
        self._provenance: List[Dict[str, Any]] = []
        self._sync_state: Dict[str, int] = {}
        self._sync_digests: Dict[Tuple[str, str], str] = {}
        #: name -> (position, state) rollup cursors.
        self._rollups: Dict[str, Tuple[int, str]] = {}
        self._counters = {"events": 0, "attributes": 0, "correlations": 0}

    def _op(self) -> None:
        self.sql_statements += 1

    # -- lifecycle ----------------------------------------------------------

    def info(self) -> BackendInfo:
        return BackendInfo(kind="memory", shard_count=1, paths=[])

    def close(self) -> None:
        pass

    # -- events -------------------------------------------------------------

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        self._op()
        return {uuid for uuid in uuids if uuid in self._events}

    def persist_batch(self, batch: PersistBatch) -> Dict[int, int]:
        self._op()
        for row in batch.audit_rows:
            self._audit_seq += 1
            self._audit.append((self._audit_seq, *row))
        for row in batch.event_rows:
            self._events[row[0]] = row
        replaced = set(batch.uuids)
        deleted_attributes = sum(
            1 for row in self._attributes if row[1] in replaced)
        self._attributes = [
            row for row in self._attributes if row[1] not in replaced]
        self._attributes.extend(batch.attribute_rows)
        for uuid in batch.uuids:
            self._tags.pop(uuid, None)
        for event_uuid, name in batch.tag_rows:
            self._tags.setdefault(event_uuid, {})[name] = None
        self._counters["events"] += batch.new_events
        self._counters["attributes"] += (
            len(batch.attribute_rows) - deleted_attributes)
        return {0: len(batch.uuids)}

    def has_event(self, uuid: str) -> bool:
        self._op()
        return uuid in self._events

    def get_event_blob(self, uuid: str) -> Optional[str]:
        self._op()
        row = self._events.get(uuid)
        return row[9] if row is not None else None

    def get_event_blobs(self, uuids: Sequence[str]
                        ) -> Dict[str, Optional[str]]:
        self._op()
        result: Dict[str, Optional[str]] = {}
        for uuid in uuids:
            row = self._events.get(uuid)
            result[uuid] = row[9] if row is not None else None
        return result

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        self._op()
        return {uuid for uuid in dict.fromkeys(uuids)
                if tag in self._tags.get(uuid, {})}

    def delete_event(self, uuid: str,
                     logged_at: Optional[int] = None) -> bool:
        self._op()
        row = self._events.pop(uuid, None)
        if row is None:
            return False
        attributes = sum(1 for r in self._attributes if r[1] == uuid)
        self._attributes = [r for r in self._attributes if r[1] != uuid]
        self._tags.pop(uuid, None)
        if logged_at is None:
            logged_at = int(row[8])
        self._audit_seq += 1
        self._audit.append((self._audit_seq, uuid, "deleted", "", logged_at))
        self._counters["events"] -= 1
        self._counters["attributes"] -= attributes
        return True

    def list_event_blobs(self, limit: Optional[int] = None,
                         published_only: bool = False,
                         since_ts: Optional[int] = None) -> List[str]:
        self._op()
        rows = [row for row in self._events.values()
                if (not published_only or row[7])
                and (since_ts is None or int(row[8]) >= int(since_ts))]
        rows.sort(key=lambda row: (-int(row[8]), row[0]))
        blobs = [row[9] for row in rows]
        return blobs[:int(limit)] if limit is not None else blobs

    def event_count(self) -> int:
        return self._counters["events"]

    def attribute_count(self) -> int:
        return self._counters["attributes"]

    # -- audit --------------------------------------------------------------

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        self._op()
        return [{"seq": seq, "action": action, "detail": detail,
                 "logged_at": logged_at}
                for seq, event_uuid, action, detail, logged_at in self._audit
                if event_uuid == uuid]

    def audit_count(self) -> int:
        return len(self._audit)

    def max_audit_seq(self) -> int:
        return self._audit_seq

    def events_changed_since(self, after_seq: int,
                             until_seq: Optional[int] = None
                             ) -> List[Tuple[str, int]]:
        self._op()
        last_seq: Dict[str, int] = {}
        for seq, event_uuid, _action, _detail, _logged_at in self._audit:
            if seq <= after_seq:
                continue
            if until_seq is not None and seq > until_seq:
                continue
            if event_uuid in self._events:
                last_seq[event_uuid] = max(
                    last_seq.get(event_uuid, 0), seq)
        changed = sorted(last_seq.items(),
                         key=lambda pair: (pair[1], pair[0]))
        return [(uuid, seq) for uuid, seq in changed]

    def changes_since(self, after_seq: int,
                      until_seq: Optional[int] = None,
                      limit: Optional[int] = None
                      ) -> List[Tuple[int, str, str, int]]:
        self._op()
        rows = [(seq, event_uuid, action, logged_at)
                for seq, event_uuid, action, _detail, logged_at in self._audit
                if seq > after_seq
                and (until_seq is None or seq <= until_seq)]
        return rows[:int(limit)] if limit is not None else rows

    # -- rollup cursors -------------------------------------------------------

    def get_rollup(self, name: str) -> Optional[Tuple[int, str]]:
        self._op()
        return self._rollups.get(name)

    def set_rollup(self, name: str, position: int, state: str = "",
                   logged_at: int = 0) -> None:
        self._op()
        self._rollups[name] = (int(position), state)

    def rollup_names(self) -> List[str]:
        self._op()
        return sorted(self._rollups)

    # -- provenance ---------------------------------------------------------

    def add_provenance(self, rows: Sequence[Tuple]) -> int:
        rows = list(rows)
        if not rows:
            return 0
        self._op()
        for row in rows:
            self._provenance.append({
                "seq": len(self._provenance) + 1,
                "trace_id": row[0], "event_uuid": row[1], "kind": row[2],
                "actor": row[3], "org": row[4], "detail": row[5],
                "cycle": int(row[6]), "logged_at": int(row[7]),
            })
        return len(rows)

    def provenance_for_event(self, event_uuid: str) -> List[Dict[str, Any]]:
        self._op()
        return [dict(row) for row in self._provenance
                if row["event_uuid"] == event_uuid]

    def provenance_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        self._op()
        return [dict(row) for row in self._provenance
                if row["trace_id"] == trace_id]

    def provenance_count(self) -> int:
        return len(self._provenance)

    def latest_traced_event(self) -> Optional[str]:
        if not self._provenance:
            return None
        return self._provenance[-1]["event_uuid"]

    # -- delta-sync ledger ---------------------------------------------------

    def get_sync_watermark(self, entity: str) -> int:
        self._op()
        return self._sync_state.get(entity, 0)

    def set_sync_watermark(self, entity: str, watermark: int,
                           logged_at: int = 0) -> None:
        self._op()
        self._sync_state[entity] = int(watermark)

    def sync_watermarks(self) -> Dict[str, int]:
        self._op()
        return dict(sorted(self._sync_state.items()))

    def get_sync_digests(self, entity: str,
                         uuids: Sequence[str]) -> Dict[str, str]:
        self._op()
        found: Dict[str, str] = {}
        for uuid in dict.fromkeys(uuids):
            digest = self._sync_digests.get((entity, uuid))
            if digest is not None:
                found[uuid] = digest
        return found

    def set_sync_digests(self, entity: str,
                         digests: Mapping[str, str]) -> None:
        if not digests:
            return
        self._op()
        for uuid, digest in digests.items():
            self._sync_digests[(entity, uuid)] = digest

    def sync_digest_count(self, entity: Optional[str] = None) -> int:
        if entity is None:
            return len(self._sync_digests)
        return sum(1 for key in self._sync_digests if key[0] == entity)

    def sync_digest_rows(self) -> List[Tuple[str, str, str]]:
        self._op()
        return sorted((entity, uuid, digest) for (entity, uuid), digest
                      in self._sync_digests.items())

    # -- search -------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        self._op()
        return [(row[1], row[0]) for row in self._attributes
                if row[4] == value]

    def search_event_blobs(self, info_substring: Optional[str] = None,
                           tag: Optional[str] = None,
                           attribute_type: Optional[str] = None,
                           value: Optional[str] = None) -> List[str]:
        self._op()
        matches: List[Tuple] = []
        for uuid, row in self._events.items():
            if tag is not None and tag not in self._tags.get(uuid, {}):
                continue
            if attribute_type is not None or value is not None:
                hit = any(
                    attr[1] == uuid
                    and (attribute_type is None or attr[2] == attribute_type)
                    and (value is None or attr[4] == value)
                    for attr in self._attributes)
                if not hit:
                    continue
            if info_substring is not None and info_substring not in row[1]:
                continue
            matches.append(row)
        matches.sort(key=lambda row: (-int(row[8]), row[0]))
        return [row[9] for row in matches]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        self._op()
        return [(row[1], row[0]) for row in self._attributes
                if row[4] == value and row[6]
                and (exclude_event is None or row[1] != exclude_event)]

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        self._op()
        result: Dict[str, List[Tuple[str, str]]] = {
            value: [] for value in values}
        for row in self._attributes:
            if row[6] and row[4] in result:
                result[row[4]].append((row[1], row[0]))
        return result

    # -- correlations --------------------------------------------------------

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        edges = list(edges)
        if not edges:
            return 0
        self._op()
        inserted = 0
        for edge in edges:
            key = (edge[0], edge[1])
            if key not in self._correlations:
                self._correlations[key] = edge
                inserted += 1
        self._counters["correlations"] += inserted
        return inserted

    @staticmethod
    def _edge_row(edge: Tuple) -> Dict[str, str]:
        return {"source_attribute": edge[0], "target_attribute": edge[1],
                "source_event": edge[2], "target_event": edge[3],
                "value": edge[4]}

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        self._op()
        return [self._edge_row(edge)
                for edge in self._correlations.values()
                if event_uuid in (edge[2], edge[3])]

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        self._op()
        result: Dict[str, List[Dict[str, str]]] = {uuid: [] for uuid in uuids}
        for edge in self._correlations.values():
            for side in dict.fromkeys((edge[2], edge[3])):
                if side in result:
                    result[side].append(self._edge_row(edge))
        return result

    def correlation_count(self) -> int:
        return self._counters["correlations"]
