"""Pluggable storage backends for :class:`~repro.misp.store.MispStore`.

See :mod:`repro.misp.storage.base` for the backend protocol and the
determinism contract every implementation honours.
"""

from .base import (
    MAX_BOUND_VARS,
    VAR_BUDGET,
    BackendInfo,
    PersistBatch,
    StorageBackend,
    chunk_size,
    chunks,
    shard_of,
)
from .memory import InMemoryBackend
from .sharded import ShardedSQLiteBackend, shard_path
from .sqlite import SQLiteBackend, detect_shard_count

__all__ = [
    "MAX_BOUND_VARS",
    "VAR_BUDGET",
    "BackendInfo",
    "InMemoryBackend",
    "PersistBatch",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "StorageBackend",
    "chunk_size",
    "chunks",
    "detect_shard_count",
    "shard_of",
    "shard_path",
]
