"""Single-file (or ``:memory:``) SQLite storage backend.

This is the seed store's persistence engine extracted behind
:class:`~repro.misp.storage.base.StorageBackend`, with three upgrades:

- a composite ``attributes(value, type)`` index so value search, correlation
  probes and delta-sync digest probes never full-table scan;
- a ``counters`` table maintained transactionally so ``event_count`` /
  ``attribute_count`` / ``correlation_count`` are O(1) reads (the obs layer
  polls them every cycle);
- a ``store_meta`` table recording the shard layout (always 1 here) so
  ``MispStore`` can auto-detect how to open an existing file.

Chunked queries derive their chunk size from the shared
:data:`~repro.misp.storage.base.MAX_BOUND_VARS` budget, so no query can
exceed SQLite's bound-variable limit however many uuids a cycle carries.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ...errors import StorageError
from .base import (
    BackendInfo,
    PersistBatch,
    StorageBackend,
    chunk_size,
    chunks,
)

#: Tables every *shard* carries (relational event data).  The single-file
#: backend is simply "one shard plus the catalog tables in the same file".
SHARD_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    uuid TEXT PRIMARY KEY,
    info TEXT NOT NULL,
    date TEXT NOT NULL,
    org TEXT NOT NULL,
    threat_level_id INTEGER NOT NULL,
    analysis INTEGER NOT NULL,
    distribution INTEGER NOT NULL,
    published INTEGER NOT NULL,
    timestamp INTEGER NOT NULL,
    blob TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attributes (
    uuid TEXT PRIMARY KEY,
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    type TEXT NOT NULL,
    category TEXT NOT NULL,
    value TEXT NOT NULL,
    to_ids INTEGER NOT NULL,
    correlatable INTEGER NOT NULL,
    timestamp INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attributes_value_type
    ON attributes(value, type);
CREATE INDEX IF NOT EXISTS idx_attributes_event ON attributes(event_uuid);
CREATE TABLE IF NOT EXISTS event_tags (
    event_uuid TEXT NOT NULL REFERENCES events(uuid) ON DELETE CASCADE,
    name TEXT NOT NULL,
    UNIQUE(event_uuid, name)
);
CREATE TABLE IF NOT EXISTS correlations (
    source_attribute TEXT NOT NULL,
    target_attribute TEXT NOT NULL,
    source_event TEXT NOT NULL,
    target_event TEXT NOT NULL,
    value TEXT NOT NULL,
    UNIQUE(source_attribute, target_attribute)
);
"""

#: Tables only the *catalog* carries (global ordered logs + ledgers).
CATALOG_SCHEMA = """
CREATE TABLE IF NOT EXISTS audit_log (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    event_uuid TEXT NOT NULL,
    action TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    logged_at INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_audit_event ON audit_log(event_uuid);
CREATE TABLE IF NOT EXISTS sync_state (
    entity TEXT PRIMARY KEY,
    watermark INTEGER NOT NULL,
    updated_at INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS sync_digests (
    entity TEXT NOT NULL,
    event_uuid TEXT NOT NULL,
    digest TEXT NOT NULL,
    PRIMARY KEY (entity, event_uuid)
);
CREATE TABLE IF NOT EXISTS provenance (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    trace_id TEXT NOT NULL,
    event_uuid TEXT NOT NULL,
    kind TEXT NOT NULL,
    actor TEXT NOT NULL DEFAULT '',
    org TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT '',
    cycle INTEGER NOT NULL DEFAULT 0,
    logged_at INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_provenance_trace ON provenance(trace_id);
CREATE INDEX IF NOT EXISTS idx_provenance_event ON provenance(event_uuid);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS rollup_state (
    name TEXT PRIMARY KEY,
    position INTEGER NOT NULL,
    state TEXT NOT NULL DEFAULT '',
    updated_at INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_PROVENANCE_COLS = ("seq, trace_id, event_uuid, kind, actor, org,"
                    " detail, cycle, logged_at")


def provenance_row(raw: Sequence[Any]) -> Dict[str, Any]:
    """Dict-shape one provenance row (shared by both SQLite backends)."""
    return {"seq": raw[0], "trace_id": raw[1], "event_uuid": raw[2],
            "kind": raw[3], "actor": raw[4], "org": raw[5],
            "detail": raw[6], "cycle": raw[7], "logged_at": raw[8]}


class CountingConnection:
    """A SQLite connection that counts Python→SQLite round trips.

    The counter feeds ``MispStore.sql_statements`` so the SQL-budget benches
    keep working across backends.  ``check_same_thread=False`` because the
    sharing fan-out hands remote stores to worker threads (serialized behind
    the gateway's transport lock) and the sharded backend commits worker
    transactions from its coordinating thread.
    """

    def __init__(self, path: str, cache_pages: Optional[int] = None) -> None:
        self.path = path
        self.raw = sqlite3.connect(path, check_same_thread=False)
        self.statements = 0
        self.raw.execute("PRAGMA foreign_keys = ON")
        if path != ":memory:":
            # WAL lets readers proceed while a batch commit is in flight;
            # NORMAL fsyncs at checkpoints instead of every commit.
            self.raw.execute("PRAGMA journal_mode = WAL")
            self.raw.execute("PRAGMA synchronous = NORMAL")
        if cache_pages is not None:
            # Fixed page-cache budget *per connection*: a sharded store's
            # aggregate cache scales with shard count (docs/PERFORMANCE.md).
            self.raw.execute(f"PRAGMA cache_size = {int(cache_pages)}")

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        self.statements += 1
        return self.raw.execute(sql, params)

    def executemany(self, sql: str, rows: Sequence[Sequence]
                    ) -> sqlite3.Cursor:
        self.statements += 1
        return self.raw.executemany(sql, rows)

    def executescript(self, script: str) -> None:
        self.raw.executescript(script)

    def commit(self) -> None:
        self.raw.commit()

    def rollback(self) -> None:
        self.raw.rollback()

    def close(self) -> None:
        self.raw.close()

    @property
    def total_changes(self) -> int:
        return self.raw.total_changes

    def query_plan(self, sql: str, params: Sequence = ()) -> str:
        """``EXPLAIN QUERY PLAN`` rendered as one string (for tests)."""
        rows = self.raw.execute(f"EXPLAIN QUERY PLAN {sql}", params).fetchall()
        return "\n".join(str(row[-1]) for row in rows)


def init_meta(conn: CountingConnection, shards: int) -> None:
    """Record (or validate) the store's shard layout in ``store_meta``."""
    row = conn.execute(
        "SELECT value FROM store_meta WHERE key = 'shards'").fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO store_meta (key, value) VALUES ('shards', ?)",
            (str(int(shards)),))
        conn.commit()
    elif int(row[0]) != shards:
        raise StorageError(
            f"store at {conn.path!r} was created with {row[0]} shard(s); "
            f"refusing to open it with {shards}")


def init_counters(conn: CountingConnection,
                  counts: Mapping[str, int]) -> None:
    """Seed missing counter rows (migration path for pre-counter stores)."""
    for name, value in counts.items():
        row = conn.execute(
            "SELECT value FROM counters WHERE name = ?", (name,)).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO counters (name, value) VALUES (?,?)",
                (name, int(value)))
    conn.commit()


def bump_counter(conn: CountingConnection, name: str, delta: int) -> None:
    """Adjust one maintained counter inside the caller's transaction."""
    if delta:
        conn.execute(
            "UPDATE counters SET value = value + ? WHERE name = ?",
            (int(delta), name))


def read_counter(conn: CountingConnection, name: str) -> int:
    row = conn.execute(
        "SELECT value FROM counters WHERE name = ?", (name,)).fetchone()
    return int(row[0]) if row is not None else 0


def detect_shard_count(path: str) -> Optional[int]:
    """The shard count recorded in an existing store file (None if absent).

    Lets ``MispStore(path)`` open a sharded store the way it was created
    without the caller re-supplying ``--store-shards``.
    """
    import os

    if path == ":memory:" or not os.path.exists(path):
        return None
    try:
        conn = sqlite3.connect(path)
        try:
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key = 'shards'"
            ).fetchone()
        finally:
            conn.close()
    except sqlite3.Error:
        return None
    return int(row[0]) if row is not None else None


class CatalogOps:
    """Audit / provenance / delta-sync methods over a catalog connection.

    Both SQLite backends keep these global, strictly-ordered tables in one
    database — the single-file backend in its only file, the sharded
    backend in its catalog — so the method bodies are identical given
    ``self._cat``.  ``events_changed_since`` filters deleted events through
    the concrete backend's :meth:`existing_events`.
    """

    _cat: CountingConnection

    # -- audit --------------------------------------------------------------

    def event_history(self, uuid: str) -> List[Dict[str, Any]]:
        rows = self._cat.execute(
            "SELECT seq, action, detail, logged_at FROM audit_log"
            " WHERE event_uuid = ? ORDER BY seq", (uuid,)).fetchall()
        return [{"seq": r[0], "action": r[1], "detail": r[2],
                 "logged_at": r[3]} for r in rows]

    def audit_count(self) -> int:
        return self._cat.execute(
            "SELECT COUNT(*) FROM audit_log").fetchone()[0]

    def max_audit_seq(self) -> int:
        row = self._cat.execute(
            "SELECT MAX(seq) FROM audit_log").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def events_changed_since(self, after_seq: int,
                             until_seq: Optional[int] = None
                             ) -> List[Tuple[str, int]]:
        query = ("SELECT event_uuid, MAX(seq) AS last_seq FROM audit_log"
                 " WHERE seq > ?")
        params: List[Any] = [int(after_seq)]
        if until_seq is not None:
            query += " AND seq <= ?"
            params.append(int(until_seq))
        query += " GROUP BY event_uuid"
        rows = self._cat.execute(query, params).fetchall()
        # Deleted events drop out: keep only uuids that still exist.
        alive = self.existing_events([row[0] for row in rows])
        changed = [(row[0], int(row[1])) for row in rows if row[0] in alive]
        changed.sort(key=lambda pair: (pair[1], pair[0]))
        return changed

    def changes_since(self, after_seq: int,
                      until_seq: Optional[int] = None,
                      limit: Optional[int] = None
                      ) -> List[Tuple[int, str, str, int]]:
        query = ("SELECT seq, event_uuid, action, logged_at FROM audit_log"
                 " WHERE seq > ?")
        params: List[Any] = [int(after_seq)]
        if until_seq is not None:
            query += " AND seq <= ?"
            params.append(int(until_seq))
        query += " ORDER BY seq"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._cat.execute(query, params).fetchall()
        return [(int(r[0]), r[1], r[2], int(r[3])) for r in rows]

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        raise NotImplementedError

    # -- rollup cursors -------------------------------------------------------

    def get_rollup(self, name: str) -> Optional[Tuple[int, str]]:
        row = self._cat.execute(
            "SELECT position, state FROM rollup_state WHERE name = ?",
            (name,)).fetchone()
        return (int(row[0]), row[1]) if row is not None else None

    def set_rollup(self, name: str, position: int, state: str = "",
                   logged_at: int = 0) -> None:
        try:
            self._cat.execute(
                "INSERT OR REPLACE INTO rollup_state (name, position,"
                " state, updated_at) VALUES (?,?,?,?)",
                (name, int(position), state, int(logged_at)))
        except BaseException:
            self._cat.rollback()
            raise
        self._cat.commit()

    def rollup_names(self) -> List[str]:
        rows = self._cat.execute(
            "SELECT name FROM rollup_state ORDER BY name").fetchall()
        return [row[0] for row in rows]

    # -- provenance ---------------------------------------------------------

    def add_provenance(self, rows: Sequence[Tuple]) -> int:
        rows = list(rows)
        if not rows:
            return 0
        try:
            self._cat.executemany(
                "INSERT INTO provenance (trace_id, event_uuid, kind, actor,"
                " org, detail, cycle, logged_at) VALUES (?,?,?,?,?,?,?,?)",
                rows)
        except BaseException:
            self._cat.rollback()
            raise
        self._cat.commit()
        return len(rows)

    def provenance_for_event(self, event_uuid: str) -> List[Dict[str, Any]]:
        rows = self._cat.execute(
            f"SELECT {_PROVENANCE_COLS} FROM provenance"
            " WHERE event_uuid = ? ORDER BY seq", (event_uuid,)).fetchall()
        return [provenance_row(row) for row in rows]

    def provenance_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        rows = self._cat.execute(
            f"SELECT {_PROVENANCE_COLS} FROM provenance"
            " WHERE trace_id = ? ORDER BY seq", (trace_id,)).fetchall()
        return [provenance_row(row) for row in rows]

    def provenance_count(self) -> int:
        return self._cat.execute(
            "SELECT COUNT(*) FROM provenance").fetchone()[0]

    def latest_traced_event(self) -> Optional[str]:
        row = self._cat.execute(
            "SELECT event_uuid FROM provenance"
            " ORDER BY seq DESC LIMIT 1").fetchone()
        return row[0] if row is not None else None

    # -- delta-sync ledger ---------------------------------------------------

    def get_sync_watermark(self, entity: str) -> int:
        row = self._cat.execute(
            "SELECT watermark FROM sync_state WHERE entity = ?",
            (entity,)).fetchone()
        return int(row[0]) if row is not None else 0

    def set_sync_watermark(self, entity: str, watermark: int,
                           logged_at: int = 0) -> None:
        try:
            self._cat.execute(
                "INSERT OR REPLACE INTO sync_state (entity, watermark,"
                " updated_at) VALUES (?,?,?)",
                (entity, int(watermark), int(logged_at)))
        except BaseException:
            self._cat.rollback()
            raise
        self._cat.commit()

    def sync_watermarks(self) -> Dict[str, int]:
        rows = self._cat.execute(
            "SELECT entity, watermark FROM sync_state ORDER BY entity"
        ).fetchall()
        return {row[0]: int(row[1]) for row in rows}

    def get_sync_digests(self, entity: str,
                         uuids: Sequence[str]) -> Dict[str, str]:
        unique = list(dict.fromkeys(uuids))
        found: Dict[str, str] = {}
        for chunk in chunks(unique, chunk_size(reserved=1)):
            placeholders = ",".join("?" * len(chunk))
            rows = self._cat.execute(
                "SELECT event_uuid, digest FROM sync_digests"
                f" WHERE entity = ? AND event_uuid IN ({placeholders})",
                [entity, *chunk]).fetchall()
            found.update({row[0]: row[1] for row in rows})
        return found

    def set_sync_digests(self, entity: str,
                         digests: Mapping[str, str]) -> None:
        if not digests:
            return
        try:
            self._cat.executemany(
                "INSERT OR REPLACE INTO sync_digests"
                " (entity, event_uuid, digest) VALUES (?,?,?)",
                [(entity, uuid, digest)
                 for uuid, digest in digests.items()])
        except BaseException:
            self._cat.rollback()
            raise
        self._cat.commit()

    def sync_digest_count(self, entity: Optional[str] = None) -> int:
        if entity is None:
            return self._cat.execute(
                "SELECT COUNT(*) FROM sync_digests").fetchone()[0]
        return self._cat.execute(
            "SELECT COUNT(*) FROM sync_digests WHERE entity = ?",
            (entity,)).fetchone()[0]

    def sync_digest_rows(self) -> List[Tuple[str, str, str]]:
        rows = self._cat.execute(
            "SELECT entity, event_uuid, digest FROM sync_digests"
            " ORDER BY entity, event_uuid").fetchall()
        return [(row[0], row[1], row[2]) for row in rows]

    # -- counters -----------------------------------------------------------

    def event_count(self) -> int:
        return read_counter(self._cat, "events")

    def attribute_count(self) -> int:
        return read_counter(self._cat, "attributes")

    def correlation_count(self) -> int:
        return read_counter(self._cat, "correlations")


class SQLiteBackend(CatalogOps, StorageBackend):
    """The classic one-file store: shard tables + catalog tables together."""

    def __init__(self, path: str = ":memory:",
                 cache_pages: Optional[int] = None) -> None:
        self._conn = CountingConnection(path, cache_pages=cache_pages)
        self._cat = self._conn
        self._path = path
        self._conn.executescript(SHARD_SCHEMA)
        self._conn.executescript(CATALOG_SCHEMA)
        init_meta(self._conn, shards=1)
        init_counters(self._conn, {
            "events": self._count_table("events"),
            "attributes": self._count_table("attributes"),
            "correlations": self._count_table("correlations"),
        })

    def _count_table(self, table: str) -> int:
        return self._conn.execute(
            f"SELECT COUNT(*) FROM {table}").fetchone()[0]

    # -- lifecycle ----------------------------------------------------------

    def info(self) -> BackendInfo:
        paths = [] if self._path == ":memory:" else [self._path]
        return BackendInfo(kind="sqlite", shard_count=1, paths=paths)

    def close(self) -> None:
        self._conn.close()

    @property
    def sql_statements(self) -> int:  # type: ignore[override]
        return self._conn.statements

    def query_plan(self, sql: str, params: Sequence = ()) -> str:
        """Expose the planner's choice for index-usage assertions."""
        return self._conn.query_plan(sql, params)

    # -- events -------------------------------------------------------------

    def existing_events(self, uuids: Sequence[str]) -> Set[str]:
        existing: Set[str] = set()
        for chunk in chunks(list(uuids), chunk_size()):
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT uuid FROM events WHERE uuid IN ({placeholders})",
                chunk).fetchall()
            existing.update(row[0] for row in rows)
        return existing

    def persist_batch(self, batch: PersistBatch) -> Dict[int, int]:
        conn = self._conn
        try:
            # Count the rows this batch replaces *before* the events upsert:
            # REPLACE cascades old attribute rows away, and cascade deletes
            # are invisible to total_changes.
            deleted_attributes = 0
            for chunk in chunks(batch.uuids, chunk_size()):
                placeholders = ",".join("?" * len(chunk))
                deleted_attributes += conn.execute(
                    "SELECT COUNT(*) FROM attributes WHERE event_uuid IN"
                    f" ({placeholders})", chunk).fetchone()[0]
            conn.executemany(
                "INSERT INTO audit_log (event_uuid, action, detail,"
                " logged_at) VALUES (?,?,?,?)", batch.audit_rows)
            conn.executemany(
                "INSERT OR REPLACE INTO events "
                "(uuid, info, date, org, threat_level_id, analysis,"
                " distribution, published, timestamp, blob)"
                " VALUES (?,?,?,?,?,?,?,?,?,?)", batch.event_rows)
            conn.executemany(
                "DELETE FROM attributes WHERE event_uuid = ?",
                [(uuid,) for uuid in batch.uuids])
            conn.executemany(
                "DELETE FROM event_tags WHERE event_uuid = ?",
                [(uuid,) for uuid in batch.uuids])
            conn.executemany(
                "INSERT OR REPLACE INTO attributes "
                "(uuid, event_uuid, type, category, value, to_ids,"
                " correlatable, timestamp) VALUES (?,?,?,?,?,?,?,?)",
                batch.attribute_rows)
            if batch.tag_rows:
                conn.executemany(
                    "INSERT OR IGNORE INTO event_tags (event_uuid, name)"
                    " VALUES (?,?)", batch.tag_rows)
            bump_counter(conn, "events", batch.new_events)
            bump_counter(conn, "attributes",
                         len(batch.attribute_rows) - deleted_attributes)
        except BaseException:
            conn.rollback()
            raise
        conn.commit()
        return {0: len(batch.uuids)}

    def has_event(self, uuid: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row is not None

    def get_event_blob(self, uuid: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT blob FROM events WHERE uuid = ?", (uuid,)).fetchone()
        return row[0] if row is not None else None

    def get_event_blobs(self, uuids: Sequence[str]
                        ) -> Dict[str, Optional[str]]:
        result: Dict[str, Optional[str]] = {uuid: None for uuid in uuids}
        unique = list(result)
        for chunk in chunks(unique, chunk_size()):
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT uuid, blob FROM events WHERE uuid IN"
                f" ({placeholders})", chunk).fetchall()
            for uuid, blob in rows:
                result[uuid] = blob
        return result

    def events_with_tag(self, tag: str, uuids: Sequence[str]) -> Set[str]:
        unique = list(dict.fromkeys(uuids))
        found: Set[str] = set()
        for chunk in chunks(unique, chunk_size(reserved=1)):
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                "SELECT DISTINCT event_uuid FROM event_tags"
                f" WHERE name = ? AND event_uuid IN ({placeholders})",
                [tag, *chunk]).fetchall()
            found.update(row[0] for row in rows)
        return found

    def delete_event(self, uuid: str,
                     logged_at: Optional[int] = None) -> bool:
        conn = self._conn
        try:
            row = conn.execute(
                "SELECT timestamp FROM events WHERE uuid = ?",
                (uuid,)).fetchone()
            attributes = conn.execute(
                "SELECT COUNT(*) FROM attributes WHERE event_uuid = ?",
                (uuid,)).fetchone()[0]
            cursor = conn.execute(
                "DELETE FROM events WHERE uuid = ?", (uuid,))
            deleted = cursor.rowcount > 0
            if deleted:
                if logged_at is None:
                    logged_at = int(row[0]) if row is not None else 0
                conn.execute(
                    "INSERT INTO audit_log (event_uuid, action, detail,"
                    " logged_at) VALUES (?,?,?,?)",
                    (uuid, "deleted", "", logged_at))
                bump_counter(conn, "events", -1)
                bump_counter(conn, "attributes", -attributes)
        except BaseException:
            conn.rollback()
            raise
        conn.commit()
        return deleted

    def list_event_blobs(self, limit: Optional[int] = None,
                         published_only: bool = False,
                         since_ts: Optional[int] = None) -> List[str]:
        query = "SELECT blob FROM events"
        params: List[Any] = []
        clauses: List[str] = []
        if published_only:
            clauses.append("published = 1")
        if since_ts is not None:
            clauses.append("timestamp >= ?")
            params.append(int(since_ts))
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY timestamp DESC, uuid"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._conn.execute(query, params).fetchall()
        return [row[0] for row in rows]

    # -- search -------------------------------------------------------------

    def search_value(self, value: str) -> List[Tuple[str, str]]:
        rows = self._conn.execute(
            "SELECT event_uuid, uuid FROM attributes WHERE value = ?"
            " ORDER BY rowid", (value,)).fetchall()
        return [(r[0], r[1]) for r in rows]

    def search_event_blobs(self, info_substring: Optional[str] = None,
                           tag: Optional[str] = None,
                           attribute_type: Optional[str] = None,
                           value: Optional[str] = None) -> List[str]:
        query = "SELECT DISTINCT e.blob, e.timestamp, e.uuid FROM events e"
        clauses: List[str] = []
        params: List[Any] = []
        if tag is not None:
            query += " JOIN event_tags t ON t.event_uuid = e.uuid"
            clauses.append("t.name = ?")
            params.append(tag)
        if attribute_type is not None or value is not None:
            query += " JOIN attributes a ON a.event_uuid = e.uuid"
            if attribute_type is not None:
                clauses.append("a.type = ?")
                params.append(attribute_type)
            if value is not None:
                clauses.append("a.value = ?")
                params.append(value)
        if info_substring is not None:
            clauses.append("e.info LIKE ?")
            params.append(f"%{info_substring}%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY e.timestamp DESC, e.uuid"
        rows = self._conn.execute(query, params).fetchall()
        return [row[0] for row in rows]

    def correlatable_attributes(self, value: str,
                                exclude_event: Optional[str] = None
                                ) -> List[Tuple[str, str]]:
        query = ("SELECT event_uuid, uuid FROM attributes "
                 "WHERE value = ? AND correlatable = 1")
        params: List[Any] = [value]
        if exclude_event is not None:
            query += " AND event_uuid != ?"
            params.append(exclude_event)
        query += " ORDER BY rowid"
        return [(r[0], r[1])
                for r in self._conn.execute(query, params).fetchall()]

    def correlatable_attributes_many(
            self, values: Sequence[str]
    ) -> Dict[str, List[Tuple[str, str]]]:
        result: Dict[str, List[Tuple[str, str]]] = {
            value: [] for value in values}
        unique = list(result)
        for chunk in chunks(unique, chunk_size()):
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                "SELECT value, event_uuid, uuid FROM attributes"
                f" WHERE correlatable = 1 AND value IN ({placeholders})"
                " ORDER BY rowid", chunk).fetchall()
            for value, event_uuid, attribute_uuid in rows:
                result[value].append((event_uuid, attribute_uuid))
        return result

    # -- correlations --------------------------------------------------------

    def save_correlations(
            self, edges: Sequence[Tuple[str, str, str, str, str]]) -> int:
        edges = list(edges)
        if not edges:
            return 0
        conn = self._conn
        try:
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO correlations VALUES (?,?,?,?,?)",
                edges)
            inserted = conn.total_changes - before
            bump_counter(conn, "correlations", inserted)
        except BaseException:
            conn.rollback()
            raise
        conn.commit()
        return inserted

    def correlations_for_event(self, event_uuid: str) -> List[Dict[str, str]]:
        rows = self._conn.execute(
            "SELECT source_attribute, target_attribute, source_event,"
            " target_event, value FROM correlations"
            " WHERE source_event = ? OR target_event = ?"
            " ORDER BY rowid",
            (event_uuid, event_uuid),
        ).fetchall()
        return [
            {
                "source_attribute": r[0], "target_attribute": r[1],
                "source_event": r[2], "target_event": r[3], "value": r[4],
            }
            for r in rows
        ]

    def correlations_for_events(
            self, uuids: Sequence[str]) -> Dict[str, List[Dict[str, str]]]:
        result: Dict[str, List[Dict[str, str]]] = {uuid: [] for uuid in uuids}
        unique = list(result)
        # Each uuid binds twice (source IN + target IN), so the chunk size
        # halves to stay inside the bound-variable budget.
        for chunk in chunks(unique, chunk_size(per_item=2)):
            chunk_set = set(chunk)
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                "SELECT source_attribute, target_attribute, source_event,"
                " target_event, value FROM correlations"
                f" WHERE source_event IN ({placeholders})"
                f" OR target_event IN ({placeholders})"
                " ORDER BY rowid", [*chunk, *chunk]).fetchall()
            for r in rows:
                row = {
                    "source_attribute": r[0], "target_attribute": r[1],
                    "source_event": r[2], "target_event": r[3], "value": r[4],
                }
                # Attach only to uuids of *this* chunk: a row whose two
                # sides land in different chunks is returned by both chunk
                # queries and must not be double-counted.
                for side in {r[2], r[3]}:
                    if side in chunk_set:
                        result[side].append(row)
        return result
