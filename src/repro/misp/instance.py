"""The MISP instance: store + correlation + real-time feed + sharing.

This is the operational module's hub (§III-B1): it ingests cIoCs, performs
"basic automated correlation steps" against stored data, publishes incoming
OSINT events on the zeroMQ feed for the heuristic component, accepts the
threat score back as a new attribute (eIoC), and syncs published events to
remote instances according to their distribution level.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..bus import MessageBroker, ZmqPublisher
from ..clock import Clock
from ..errors import SharingError, StorageError, TransientStorageError
from ..ids import IdGenerator
from ..obs import MetricsRegistry, NULL_REGISTRY
from .export import EXPORT_MODULES, to_stix2_bundle
from .model import Distribution, MispAttribute, MispEvent, MispTag
from .sharing_groups import SharingGroup
from .store import MispStore

#: zeroMQ topics mirroring MISP's real feed names.
TOPIC_EVENT = "misp_json"
TOPIC_ATTRIBUTE = "misp_json_attribute"


@dataclass
class SyncStats:
    """Counters describing instance-to-instance sync outcomes."""
    pushed_events: int = 0
    pulled_events: int = 0
    skipped_distribution: int = 0
    skipped_duplicates: int = 0


class MispInstance:
    """One MISP deployment: local store, correlation, feed, sync peers."""

    def __init__(self, org: str = "CAOP", store: Optional[MispStore] = None,
                 broker: Optional[MessageBroker] = None,
                 id_generator: Optional[IdGenerator] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None,
                 store_retry_policy=None,
                 sleeper=None,
                 deadletters=None,
                 fault_injector=None) -> None:
        self.org = org
        self._clock = clock
        self.store = store or MispStore(metrics=metrics, clock=clock,
                                        fault_injector=fault_injector)
        self.broker = broker or MessageBroker(metrics=metrics)
        if fault_injector is not None and self.broker.fault_injector is None:
            self.broker.fault_injector = fault_injector
        self.zmq = ZmqPublisher(self.broker)
        self._peers: List["MispInstance"] = []
        self.sync_stats = SyncStats()
        self._ids = id_generator or IdGenerator()
        self.sharing_groups: Dict[str, SharingGroup] = {}
        self._store_retry = store_retry_policy
        self._sleeper = sleeper
        self._deadletters = deadletters
        self._fault_injector = fault_injector
        registry = metrics or NULL_REGISTRY
        self._m_backoff = registry.histogram(
            "caop_retry_backoff_seconds",
            "Backoff computed before each retry attempt")

    # -- ingestion ------------------------------------------------------------

    def add_event(self, event: MispEvent, publish_feed: bool = True) -> MispEvent:
        """Store an event, correlate it, and publish it on the zmq feed.

        Re-adding the same uuid replaces the stored version (MISP edit
        semantics).
        """
        return self.add_events([event], publish_feed=publish_feed)[0]

    def add_events(self, events: Sequence[MispEvent],
                   publish_feed: bool = True) -> List[MispEvent]:
        """Store a batch of events, correlate them, publish each on zmq.

        This is the bulk-ingestion entry point the collector's store stage
        uses: the whole batch is persisted in one transaction and correlated
        with one value lookup, yet produces exactly the events, audit trail
        and correlation edges that adding each event in turn would.
        """
        events = list(events)
        if not events:
            return events
        self._save_with_retry(events)
        self._correlate_batch(events)
        if publish_feed:
            for event in events:
                self.zmq.send(TOPIC_EVENT, event.to_dict())
        return events

    def _save_with_retry(self, events: List[MispEvent]) -> None:
        """Persist a batch, retrying transient storage faults with backoff.

        Exhausted batches are quarantined to the dead-letter queue (when one
        is wired) before the :class:`StorageError` propagates, so a flaky
        store degrades the cycle without losing the composed events —
        ``DeadLetterQueue.replay`` re-ingests them once the fault clears.
        Permanent storage errors (duplicate uuid with ``replace=False``...)
        are never retried.
        """
        attempt = 0
        while True:
            try:
                if self._fault_injector is not None:
                    self._fault_injector.check("store", "add_events")
                self.store.save_events(events)
                return
            except TransientStorageError as exc:
                if self._store_retry is not None and \
                        attempt < self._store_retry.max_retries:
                    delay = self._store_retry.delay("misp-store", attempt)
                    self._m_backoff.observe(delay, component="store")
                    if self._sleeper is not None:
                        self._sleeper.sleep(delay)
                    attempt += 1
                    continue
                if self._deadletters is not None:
                    self._deadletters.quarantine_events(
                        events, reason=f"store: {exc}")
                    raise StorageError(
                        f"save_events failed after {attempt + 1} attempt(s); "
                        f"{len(events)} events quarantined") from exc
                raise

    def apply_enrichments(self, events: Sequence[MispEvent],
                          publish_feed: bool = False) -> List[MispEvent]:
        """Persist one enrichment cycle's write-back as a single batch.

        ``events`` are fully-built eIoCs: the heuristic component's planner
        has already applied score/breakdown attributes, galaxy tags and the
        enriched tag in memory.  The batch is stored in one transaction
        (:meth:`MispStore.apply_enrichments`) and re-correlated with one
        chunked value probe — replacing the ~6 store round trips per event
        that the serial ``add_attribute``/``tag_event`` write-back issued.
        With ``publish_feed`` the enriched events go out on the zmq event
        feed in one publication pass (off by default: the historical
        enrichment path never re-published, and re-publishing would make the
        heuristic component re-drain its own output).
        """
        events = list(events)
        if not events:
            return events
        self.store.apply_enrichments(events)
        self._correlate_batch(events)
        if publish_feed:
            for event in events:
                self.zmq.send(TOPIC_EVENT, event.to_dict())
        return events

    def add_attribute(self, event_uuid: str, attribute: MispAttribute,
                      publish_feed: bool = True) -> MispEvent:
        """Append an attribute to a stored event (enrichment entry point)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.add_attribute(attribute)
        self.store.save_event(event)
        self._correlate(event)
        if publish_feed:
            self.zmq.send(TOPIC_ATTRIBUTE, {
                "event_uuid": event_uuid,
                "Attribute": attribute.to_dict(),
            })
        return event

    def tag_event(self, event_uuid: str, tag: str) -> MispEvent:
        """Add a tag to a stored event."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.add_tag(tag)
        self.store.save_event(event)
        return event

    def publish_event(self, event_uuid: str) -> MispEvent:
        """Mark an event published (this is what sync distributes)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.published = True
        self.store.save_event(event)
        self._push_to_peers(event)
        return event

    # -- correlation --------------------------------------------------------------

    def _correlate(self, event: MispEvent) -> int:
        """MISP-style value correlation: link equal correlatable values."""
        return self._correlate_batch([event])

    def _correlate_batch(self, events: Sequence[MispEvent]) -> int:
        """Correlate a batch of just-stored events against the store.

        One chunked ``IN (...)`` lookup resolves every correlatable value of
        the batch, then all edges go through one ``executemany`` insert.
        Edges are exactly those the serial per-event path creates: event *i*
        links only against events already stored before it — pre-existing
        ones plus batch members *j < i* — never against itself or later
        batch members (those report the edge from their side).
        """
        events = list(events)
        if not events:
            return 0
        batch_order = {event.uuid: index for index, event in enumerate(events)}
        correlatable: List[List[MispAttribute]] = []
        values: List[str] = []
        for event in events:
            attributes = [attribute for attribute in event.all_attributes()
                          if attribute.correlatable]
            correlatable.append(attributes)
            values.extend(attribute.value for attribute in attributes)
        if not values:
            return 0
        matches = self.store.correlatable_attributes_many(values)
        edges: List[tuple] = []
        for index, (event, attributes) in enumerate(zip(events, correlatable)):
            for attribute in attributes:
                for other_event, other_attribute in matches.get(
                        attribute.value, ()):
                    if other_event == event.uuid:
                        continue
                    other_index = batch_order.get(other_event)
                    if other_index is not None and other_index >= index:
                        continue
                    edges.append((
                        attribute.uuid, other_attribute,
                        event.uuid, other_event, attribute.value,
                    ))
        self.store.save_correlations(edges)
        return len(edges)

    def correlations(self, event_uuid: str) -> List[Dict[str, str]]:
        """Correlation rows touching one event."""
        return self.store.correlations_for_event(event_uuid)

    # -- export ------------------------------------------------------------------

    def export_event(self, event_uuid: str, export_format: str = "misp-json") -> str:
        """Render a stored event through one of the export modules."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        module = EXPORT_MODULES.get(export_format)
        if module is None:
            raise SharingError(f"no export module for format {export_format!r}")
        return module(event)

    def export_stix2(self, event_uuid: str):
        """Typed STIX 2.0 bundle export (what the heuristic component reads)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        return to_stix2_bundle(event)

    # -- instance-to-instance sync ---------------------------------------------------

    def add_peer(self, peer: "MispInstance") -> None:
        """Register a trusted remote instance (one-way push)."""
        if peer is self:
            raise SharingError("an instance cannot peer with itself")
        if peer not in self._peers:
            self._peers.append(peer)

    @property
    def peers(self) -> List["MispInstance"]:
        """The registered sync peers."""
        return list(self._peers)

    def _push_to_peers(self, event: MispEvent) -> None:
        for peer in self._peers:
            self.push_event(event, peer)

    def create_sharing_group(self, name: str,
                             organisations: List[str]) -> SharingGroup:
        """Create (and register) a sharing group owned by this instance."""
        group = SharingGroup(name=name, organisations=set(organisations),
                             uuid=self._ids.uuid())
        self.sharing_groups[group.uuid] = group
        return group

    def release_gate(self, event: MispEvent, dest_org: str):
        """May this event leave the instance toward ``dest_org``?

        Returns ``(ok, group, reason)``: the MISP distribution gate every
        outbound path — point-to-point push, pull, or a federation
        backbone link — must pass.  ``group`` is the
        :class:`SharingGroup` that authorized a sharing-group release
        (the caller propagates its definition to the receiver so the same
        boundary holds on any onward hop); ``reason`` names the refusal.
        """
        if event.distribution in (Distribution.ORGANISATION_ONLY,
                                  Distribution.COMMUNITY_ONLY):
            return False, None, "distribution level withheld"
        if event.distribution == Distribution.SHARING_GROUP:
            group = self.sharing_groups.get(event.sharing_group_id or "")
            if group is None or not group.releasable_to(dest_org):
                return False, None, "sharing group excludes destination"
            return True, group, ""
        return True, None, ""

    @staticmethod
    def release_copy(event: MispEvent) -> MispEvent:
        """The wire copy of an outbound event, with the hop downgrade applied.

        CONNECTED_COMMUNITIES becomes COMMUNITY_ONLY at the receiver, so
        events stop propagating one hop further, exactly like MISP.
        """
        copy = MispEvent.from_dict(event.to_dict())
        if copy.distribution == Distribution.CONNECTED_COMMUNITIES:
            copy.distribution = Distribution.COMMUNITY_ONLY
        return copy

    def push_event(self, event: MispEvent, peer: "MispInstance",
                   trace_context: Optional[Dict[str, Any]] = None) -> bool:
        """Push one event to a peer honouring MISP distribution semantics.

        The distribution gate and hop downgrade live in
        :meth:`release_gate` / :meth:`release_copy` (shared with the
        federation backbone).  Sharing-group events only reach peers whose
        organisation is a group member (no downgrade: the group definition
        itself bounds further propagation).

        ``trace_context`` (:func:`repro.obs.provenance.share_context`)
        rides alongside the payload — never inside the event content, so
        digests and cross-store byte-equality are untouched — and lets the
        receiving store record a ``synced-from`` lineage row carrying the
        accumulated org path.
        """
        ok, group, _reason = self.release_gate(event, peer.org)
        if not ok:
            self.sync_stats.skipped_distribution += 1
            return False
        if group is not None:
            # The receiving instance learns the group definition so it can
            # enforce the same boundary on any onward push.
            peer.sharing_groups.setdefault(group.uuid, group)
        if peer.store.has_event(event.uuid):
            stored = peer.store.get_event(event.uuid)
            if stored is not None and stored.timestamp >= event.timestamp:
                self.sync_stats.skipped_duplicates += 1
                return False
        peer.receive_event(self.release_copy(event),
                           trace_context=trace_context)
        self.sync_stats.pushed_events += 1
        return True

    def receive_event(self, event: MispEvent,
                      trace_context: Optional[Dict[str, Any]] = None) -> None:
        """Peer-facing ingestion endpoint (no re-publish on the zmq feed)."""
        self.receive_events(
            [event],
            trace_contexts={event.uuid: trace_context} if trace_context else None)

    def receive_events(self, events: Sequence[MispEvent],
                       trace_contexts: Optional[
                           Dict[str, Dict[str, Any]]] = None) -> None:
        """Batched peer-facing ingestion: one transaction, one correlation pass.

        ``trace_contexts`` maps event uuid to the sender's trace context;
        each present entry becomes one ``synced-from`` lineage row in this
        instance's store, stitching the cross-org journey.
        """
        events = list(events)
        if not events:
            return
        self.store.save_events(events)
        self._correlate_batch(events)
        self.sync_stats.pulled_events += len(events)
        if trace_contexts:
            self._record_sync_receipts(events, trace_contexts)

    def _record_sync_receipts(
            self, events: Sequence[MispEvent],
            trace_contexts: Dict[str, Dict[str, Any]]) -> None:
        from ..obs.provenance import ProvenanceEvent, trace_id_for
        logged_at = (int(self._clock.now().timestamp())
                     if self._clock is not None else 0)
        rows = []
        for event in events:
            context = trace_contexts.get(event.uuid)
            if not context:
                continue
            path = list(context.get("path") or [])
            rows.append(ProvenanceEvent(
                trace_id=context.get("trace_id") or trace_id_for(event.uuid),
                event_uuid=event.uuid, kind="synced-from",
                actor=f"sync:{path[-1]}" if path else "sync",
                org=self.org,
                detail=json.dumps({"path": path}, sort_keys=True),
                logged_at=logged_at))
        if rows:
            self.store.add_provenance(rows)

    def pull_from(self, peer: "MispInstance") -> int:
        """Pull every shareable published event from a peer.

        Accepted events are persisted and correlated as one batch.
        """
        candidates: List[MispEvent] = []
        for event in peer.store.list_events(published_only=True):
            ok, group, _reason = peer.release_gate(event, self.org)
            if not ok:
                continue
            if group is not None:
                self.sharing_groups.setdefault(group.uuid, group)
            candidates.append(event)
        # One chunked existence probe instead of a has_event round trip
        # per candidate.
        known = self.store.existing_events(
            [event.uuid for event in candidates])
        copies = [self.release_copy(event) for event in candidates
                  if event.uuid not in known]
        if copies:
            self.store.save_events(copies)
            self._correlate_batch(copies)
        return len(copies)
