"""The MISP instance: store + correlation + real-time feed + sharing.

This is the operational module's hub (§III-B1): it ingests cIoCs, performs
"basic automated correlation steps" against stored data, publishes incoming
OSINT events on the zeroMQ feed for the heuristic component, accepts the
threat score back as a new attribute (eIoC), and syncs published events to
remote instances according to their distribution level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..bus import MessageBroker, ZmqPublisher
from ..errors import SharingError, StorageError
from ..ids import IdGenerator
from ..obs import MetricsRegistry
from .export import EXPORT_MODULES, to_stix2_bundle
from .model import Distribution, MispAttribute, MispEvent, MispTag
from .sharing_groups import SharingGroup
from .store import MispStore

#: zeroMQ topics mirroring MISP's real feed names.
TOPIC_EVENT = "misp_json"
TOPIC_ATTRIBUTE = "misp_json_attribute"


@dataclass
class SyncStats:
    """Counters describing instance-to-instance sync outcomes."""
    pushed_events: int = 0
    pulled_events: int = 0
    skipped_distribution: int = 0
    skipped_duplicates: int = 0


class MispInstance:
    """One MISP deployment: local store, correlation, feed, sync peers."""

    def __init__(self, org: str = "CAOP", store: Optional[MispStore] = None,
                 broker: Optional[MessageBroker] = None,
                 id_generator: Optional[IdGenerator] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.org = org
        self.store = store or MispStore(metrics=metrics)
        self.broker = broker or MessageBroker(metrics=metrics)
        self.zmq = ZmqPublisher(self.broker)
        self._peers: List["MispInstance"] = []
        self.sync_stats = SyncStats()
        self._ids = id_generator or IdGenerator()
        self.sharing_groups: Dict[str, SharingGroup] = {}

    # -- ingestion ------------------------------------------------------------

    def add_event(self, event: MispEvent, publish_feed: bool = True) -> MispEvent:
        """Store an event, correlate it, and publish it on the zmq feed.

        Re-adding the same uuid replaces the stored version (MISP edit
        semantics).
        """
        self.store.save_event(event)
        self._correlate(event)
        if publish_feed:
            self.zmq.send(TOPIC_EVENT, event.to_dict())
        return event

    def add_attribute(self, event_uuid: str, attribute: MispAttribute,
                      publish_feed: bool = True) -> MispEvent:
        """Append an attribute to a stored event (enrichment entry point)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.add_attribute(attribute)
        self.store.save_event(event)
        self._correlate(event)
        if publish_feed:
            self.zmq.send(TOPIC_ATTRIBUTE, {
                "event_uuid": event_uuid,
                "Attribute": attribute.to_dict(),
            })
        return event

    def tag_event(self, event_uuid: str, tag: str) -> MispEvent:
        """Add a tag to a stored event."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.add_tag(tag)
        self.store.save_event(event)
        return event

    def publish_event(self, event_uuid: str) -> MispEvent:
        """Mark an event published (this is what sync distributes)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        event.published = True
        self.store.save_event(event)
        self._push_to_peers(event)
        return event

    # -- correlation --------------------------------------------------------------

    def _correlate(self, event: MispEvent) -> int:
        """MISP-style value correlation: link equal correlatable values."""
        created = 0
        for attribute in event.all_attributes():
            if not attribute.correlatable:
                continue
            for other_event, other_attribute in self.store.correlatable_attributes(
                    attribute.value, exclude_event=event.uuid):
                self.store.save_correlation(
                    source_attribute=attribute.uuid,
                    target_attribute=other_attribute,
                    source_event=event.uuid,
                    target_event=other_event,
                    value=attribute.value,
                )
                created += 1
        return created

    def correlations(self, event_uuid: str) -> List[Dict[str, str]]:
        """Correlation rows touching one event."""
        return self.store.correlations_for_event(event_uuid)

    # -- export ------------------------------------------------------------------

    def export_event(self, event_uuid: str, export_format: str = "misp-json") -> str:
        """Render a stored event through one of the export modules."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        module = EXPORT_MODULES.get(export_format)
        if module is None:
            raise SharingError(f"no export module for format {export_format!r}")
        return module(event)

    def export_stix2(self, event_uuid: str):
        """Typed STIX 2.0 bundle export (what the heuristic component reads)."""
        event = self.store.get_event(event_uuid)
        if event is None:
            raise StorageError(f"no such event {event_uuid}")
        return to_stix2_bundle(event)

    # -- instance-to-instance sync ---------------------------------------------------

    def add_peer(self, peer: "MispInstance") -> None:
        """Register a trusted remote instance (one-way push)."""
        if peer is self:
            raise SharingError("an instance cannot peer with itself")
        if peer not in self._peers:
            self._peers.append(peer)

    @property
    def peers(self) -> List["MispInstance"]:
        """The registered sync peers."""
        return list(self._peers)

    def _push_to_peers(self, event: MispEvent) -> None:
        for peer in self._peers:
            self.push_event(event, peer)

    def create_sharing_group(self, name: str,
                             organisations: List[str]) -> SharingGroup:
        """Create (and register) a sharing group owned by this instance."""
        group = SharingGroup(name=name, organisations=set(organisations),
                             uuid=self._ids.uuid())
        self.sharing_groups[group.uuid] = group
        return group

    def push_event(self, event: MispEvent, peer: "MispInstance") -> bool:
        """Push one event to a peer honouring MISP distribution semantics.

        Distribution downgrade on hop: CONNECTED_COMMUNITIES becomes
        COMMUNITY_ONLY at the receiver, so events stop propagating one hop
        further, exactly like MISP.  Sharing-group events only reach peers
        whose organisation is a group member (no downgrade: the group
        definition itself bounds further propagation).
        """
        if event.distribution in (Distribution.ORGANISATION_ONLY,
                                  Distribution.COMMUNITY_ONLY):
            self.sync_stats.skipped_distribution += 1
            return False
        if event.distribution == Distribution.SHARING_GROUP:
            group = self.sharing_groups.get(event.sharing_group_id or "")
            if group is None or not group.releasable_to(peer.org):
                self.sync_stats.skipped_distribution += 1
                return False
            # The receiving instance learns the group definition so it can
            # enforce the same boundary on any onward push.
            peer.sharing_groups.setdefault(group.uuid, group)
        if peer.store.has_event(event.uuid):
            stored = peer.store.get_event(event.uuid)
            if stored is not None and stored.timestamp >= event.timestamp:
                self.sync_stats.skipped_duplicates += 1
                return False
        copy = MispEvent.from_dict(event.to_dict())
        if copy.distribution == Distribution.CONNECTED_COMMUNITIES:
            copy.distribution = Distribution.COMMUNITY_ONLY
        peer.receive_event(copy)
        self.sync_stats.pushed_events += 1
        return True

    def receive_event(self, event: MispEvent) -> None:
        """Peer-facing ingestion endpoint (no re-publish on the zmq feed)."""
        self.store.save_event(event)
        self._correlate(event)
        self.sync_stats.pulled_events += 1

    def pull_from(self, peer: "MispInstance") -> int:
        """Pull every shareable published event from a peer."""
        pulled = 0
        for event in peer.store.list_events(published_only=True):
            if event.distribution in (Distribution.ORGANISATION_ONLY,
                                      Distribution.COMMUNITY_ONLY):
                continue
            if event.distribution == Distribution.SHARING_GROUP:
                group = peer.sharing_groups.get(event.sharing_group_id or "")
                if group is None or not group.releasable_to(self.org):
                    continue
                self.sharing_groups.setdefault(group.uuid, group)
            if self.store.has_event(event.uuid):
                continue
            copy = MispEvent.from_dict(event.to_dict())
            if copy.distribution == Distribution.CONNECTED_COMMUNITIES:
                copy.distribution = Distribution.COMMUNITY_ONLY
            self.store.save_event(copy)
            self._correlate(copy)
            pulled += 1
        return pulled
