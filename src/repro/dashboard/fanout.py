"""Snapshot+delta fan-out: versioned room state for massive client counts.

The paper's output module pushes rIoCs and alarms to dashboard clients over
socket.io-style rooms (§IV-A).  A naive push re-renders and re-delivers the
payload once per client, which collapses at large subscriber counts; this
module gives the dashboard the shape DISINFOX-style CTI services use — one
materialized state per room, served to any number of heterogeneous
consumers through a *snapshot+delta subscription protocol*:

- every :class:`Room` holds a key→value state map and a **monotone version
  counter**; writes between flushes are **coalesced last-write-per-key**, so
  a key rewritten 50 times in one cycle costs one delta entry;
- a client joins with the last version it has seen and receives either
  nothing (already current), the missing deltas replayed from the room's
  bounded history, or a fresh **snapshot** — the protocol invariant (driven
  by ``tests/test_fanout_properties.py``) is that ``snapshot(v0) +
  deltas(v0..vN)`` reconstructs **byte-identically** to ``snapshot(vN)``;
- each flushed ``(room, version, kind)`` payload is rendered through a
  :class:`~repro.sharing.sync.RenderCache` exactly once and the *same*
  :class:`~repro.bus.Message` object is offered to every subscriber, so a
  cycle's render count is O(rooms), not O(clients);
- a **slow consumer** whose bounded queue overflows is load-shed through
  :meth:`~repro.bus.Subscription.shed` — its backlog is counted into the
  broker's drop accounting and it is degraded to "resync from snapshot" on
  the same flush, instead of growing an unbounded queue.

Wire payloads are canonical JSON (sorted keys, compact separators) with an
explicit ``schema`` field so golden files stay stable; see docs/FANOUT.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..bus import Message, MessageBroker, Subscription
from ..errors import ReproError, ValidationError
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..sharing.sync import RenderCache, RenderedPayload

#: Wire-schema version stamped into every snapshot and delta payload.
SCHEMA_VERSION = 1

#: Payload kinds (the ``kind`` field of every wire payload).
KIND_SNAPSHOT = "snapshot"
KIND_DELTA = "delta"

#: Topic prefix for fan-out messages (``fanout.<room>``), which is also the
#: key drop accounting lands on in ``BrokerStats.dropped_topics``.
TOPIC_PREFIX = "fanout."

#: Default bounded delta history per room (versions replayable on join).
DEFAULT_HISTORY = 64

#: Default per-subscriber queue bound (the zeroMQ-style high-water mark);
#: overflowing it sheds the subscriber into a snapshot resync.
DEFAULT_MAX_PENDING = 64


def canonical_json(payload: Any) -> str:
    """The canonical wire form: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class DeltaRecord:
    """One flushed room version: the coalesced writes that produced it."""

    version: int
    #: ``(key, value)`` pairs in key order — last write per key wins.
    upserts: Tuple[Tuple[str, Any], ...]
    deletes: Tuple[str, ...]
    #: Writes absorbed by coalescing before this flush (same-key rewrites).
    coalesced: int


class Room:
    """One versioned key→value state map with coalesced pending writes.

    The room is the unit of rendering: whatever feeds it (rIoC pushes,
    alarm pushes, materialized-view syncs), subscribers all see the same
    version sequence and the same canonical payloads.
    """

    def __init__(self, name: str, history: int = DEFAULT_HISTORY) -> None:
        if history < 0:
            raise ValidationError("history must be non-negative")
        self.name = name
        self.version = 0
        self._state: Dict[str, Any] = {}
        self._pending_upserts: Dict[str, Any] = {}
        self._pending_deletes: set = set()
        self._coalesced = 0
        self._history: List[DeltaRecord] = []
        self._history_limit = history

    # -- writes (buffered until flush) -----------------------------------------

    def upsert(self, key: str, value: Any) -> None:
        """Stage a key write; same-key writes before a flush coalesce."""
        if key in self._pending_upserts or key in self._pending_deletes:
            self._coalesced += 1
        self._pending_deletes.discard(key)
        self._pending_upserts[key] = value

    def delete(self, key: str) -> None:
        """Stage a key removal (coalesces away a pending write to it)."""
        if key in self._pending_upserts:
            self._coalesced += 1
            del self._pending_upserts[key]
        if key in self._state:
            self._pending_deletes.add(key)

    def sync_map(self, mapping: Dict[str, Any], prune: bool = True) -> int:
        """Diff a full mapping against the room and stage the difference.

        Only changed keys become delta entries, so syncing an unchanged
        materialized view stages nothing.  With ``prune`` keys absent from
        ``mapping`` are deleted.  Returns how many keys were staged.
        """
        staged = 0
        view = dict(self._state)
        view.update(self._pending_upserts)
        for key in self._pending_deletes:
            view.pop(key, None)
        for key, value in mapping.items():
            if key not in view or view[key] != value:
                self.upsert(key, value)
                staged += 1
        if prune:
            for key in view:
                if key not in mapping:
                    self.delete(key)
                    staged += 1
        return staged

    @property
    def dirty(self) -> bool:
        """Whether a flush would produce a new version."""
        return bool(self._pending_upserts or self._pending_deletes)

    def flush(self) -> Optional[DeltaRecord]:
        """Apply pending writes as one new version; None when clean."""
        if not self.dirty:
            return None
        self.version += 1
        upserts = tuple(sorted(self._pending_upserts.items()))
        deletes = tuple(sorted(self._pending_deletes))
        for key, value in upserts:
            self._state[key] = value
        for key in deletes:
            self._state.pop(key, None)
        record = DeltaRecord(version=self.version, upserts=upserts,
                             deletes=deletes, coalesced=self._coalesced)
        self._history.append(record)
        if len(self._history) > self._history_limit:
            del self._history[:len(self._history) - self._history_limit]
        self._pending_upserts = {}
        self._pending_deletes = set()
        self._coalesced = 0
        return record

    # -- reads ------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """The materialized state at the current version (a copy)."""
        return dict(self._state)

    def deltas_since(self, version: int) -> Optional[List[DeltaRecord]]:
        """Flushed deltas after ``version``; None when history can't cover.

        Returns ``[]`` for an already-current consumer.  None means the
        requested range fell off the bounded history (or the version is
        from another life of the room) and the consumer needs a snapshot.
        """
        if version == self.version:
            return []
        if version > self.version or version < 0:
            return None
        records = [r for r in self._history if r.version > version]
        if not records or records[0].version != version + 1:
            return None
        return records

    # -- wire payloads -----------------------------------------------------------

    def snapshot_payload(self) -> Dict[str, Any]:
        """The versioned snapshot wire payload at the current version."""
        return {
            "kind": KIND_SNAPSHOT,
            "schema": SCHEMA_VERSION,
            "room": self.name,
            "version": self.version,
            "state": dict(self._state),
        }

    def delta_payload(self, record: DeltaRecord) -> Dict[str, Any]:
        """The delta wire payload for one flushed version."""
        return {
            "kind": KIND_DELTA,
            "schema": SCHEMA_VERSION,
            "room": self.name,
            "version": record.version,
            "since": record.version - 1,
            "upserts": dict(record.upserts),
            "deletes": list(record.deletes),
        }


@dataclass
class FanoutSubscriber:
    """One subscriber's hub-side handle: its queue plus protocol position."""

    room: str
    sid: str
    subscription: Subscription
    #: Last version enqueued to this subscriber (what it will have seen
    #: once it drains its queue).
    version: int = 0
    resyncs: int = 0


@dataclass
class FlushReport:
    """What one :meth:`FanoutHub.flush` accomplished."""

    rooms: int = 0
    deltas: int = 0
    delivered: int = 0
    snapshots: int = 0
    coalesced: int = 0
    shed_messages: int = 0
    shed_subscribers: int = 0
    resyncs: int = 0
    faulted: int = 0
    renders: int = 0
    render_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (CLI/report surface)."""
        return {
            "rooms": self.rooms,
            "deltas": self.deltas,
            "delivered": self.delivered,
            "snapshots": self.snapshots,
            "coalesced": self.coalesced,
            "shed_messages": self.shed_messages,
            "shed_subscribers": self.shed_subscribers,
            "resyncs": self.resyncs,
            "faulted": self.faulted,
            "renders": self.renders,
            "render_hits": self.render_hits,
        }


class FanoutHub:
    """Room registry + subscription protocol + flush-time delivery.

    Delivery cost model: ``flush`` renders each dirty room's delta once,
    wraps it in one shared :class:`Message`, and *offers* that object to
    every subscriber's bounded queue — per-subscriber cost is one deque
    append, and render cost is O(dirty rooms).  Drop accounting rides the
    owning broker's :class:`~repro.bus.BrokerStats` so the fan-out's losses
    appear in the same ledger as every other bus consumer's.
    """

    def __init__(self, broker: Optional[MessageBroker] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 history: int = DEFAULT_HISTORY,
                 max_pending: int = DEFAULT_MAX_PENDING) -> None:
        self.broker = broker or MessageBroker()
        self._history = history
        self._max_pending = max_pending
        self._rooms: Dict[str, Room] = {}
        self._subscribers: Dict[str, Dict[str, FanoutSubscriber]] = {}
        self._next_sid = 0
        self._sequence = 0
        metrics = metrics or NULL_REGISTRY
        self._cache = RenderCache(
            metrics,
            metric_name="caop_fanout_renders_total",
            metric_help="Fan-out payload render-cache lookups, labelled hit/miss")
        self._g_rooms = metrics.gauge(
            "caop_fanout_rooms",
            "Rooms currently materialized by the fan-out hub")
        self._g_subscribers = metrics.gauge(
            "caop_fanout_subscribers",
            "Connected fan-out subscribers, by room")
        self._m_deltas = metrics.counter(
            "caop_fanout_deltas_total",
            "Delta versions flushed to fan-out rooms, by room")
        self._m_snapshots = metrics.counter(
            "caop_fanout_snapshots_total",
            "Snapshot payloads delivered to fan-out subscribers, by room")
        self._m_coalesced = metrics.counter(
            "caop_fanout_coalesced_total",
            "Writes absorbed by last-write-per-key delta coalescing, by room")
        self._m_resyncs = metrics.counter(
            "caop_fanout_resyncs_total",
            "Shed subscribers resynchronized from a fresh snapshot, by room")
        self._m_shed = metrics.counter(
            "caop_fanout_shed_total",
            "Messages dropped by load-shedding lagging subscribers, by room")

    # -- rooms -------------------------------------------------------------------

    def room(self, name: str) -> Room:
        """Get or create the named room."""
        existing = self._rooms.get(name)
        if existing is None:
            existing = self._rooms[name] = Room(name, history=self._history)
            self._subscribers.setdefault(name, {})
            self._g_rooms.set(len(self._rooms))
        return existing

    def room_names(self) -> List[str]:
        """Every materialized room name, sorted."""
        return sorted(self._rooms)

    def publish(self, room: str, key: str, value: Any) -> None:
        """Stage one key write into a room (delivered on the next flush)."""
        self.room(room).upsert(key, value)

    def delete(self, room: str, key: str) -> None:
        """Stage one key removal from a room."""
        self.room(room).delete(key)

    def sync_map(self, room: str, mapping: Dict[str, Any],
                 prune: bool = True) -> int:
        """Diff a full mapping into a room (see :meth:`Room.sync_map`)."""
        return self.room(room).sync_map(mapping, prune=prune)

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, room_name: str, last_seen: int = 0,
                  max_pending: Optional[int] = None) -> FanoutSubscriber:
        """Join a room at ``last_seen`` and receive the catch-up payloads.

        The catch-up is enqueued immediately: nothing when already current,
        the missing deltas when the room's bounded history covers the gap,
        a fresh snapshot otherwise.
        """
        room = self.room(room_name)
        self._next_sid += 1
        subscriber = FanoutSubscriber(
            room=room_name,
            sid=f"fo-{self._next_sid}",
            subscription=Subscription(
                TOPIC_PREFIX + room_name,
                max_pending=max_pending or self._max_pending),
            version=last_seen,
        )
        self._subscribers.setdefault(room_name, {})[subscriber.sid] = subscriber
        records = room.deltas_since(last_seen)
        if records is None:
            payload = self._render(room_name, KIND_SNAPSHOT, room.version,
                                   room.snapshot_payload)
            self._offer(subscriber, payload.text)
            subscriber.version = room.version
            self._m_snapshots.inc(room=room_name)
        else:
            for record in records:
                payload = self._render(
                    room_name, KIND_DELTA, record.version,
                    lambda record=record: room.delta_payload(record))
                self._offer(subscriber, payload.text)
                subscriber.version = record.version
        self._g_subscribers.set(
            len(self._subscribers[room_name]), room=room_name)
        return subscriber

    def unsubscribe(self, subscriber: FanoutSubscriber) -> None:
        """Disconnect a subscriber and release its queue."""
        subscriber.subscription.close()
        members = self._subscribers.get(subscriber.room, {})
        members.pop(subscriber.sid, None)
        self._g_subscribers.set(len(members), room=subscriber.room)

    def subscriber_count(self, room: Optional[str] = None) -> int:
        """Connected subscribers in ``room`` (all rooms when None)."""
        if room is not None:
            return len(self._subscribers.get(room, {}))
        return sum(len(members) for members in self._subscribers.values())

    def request_resync(self, subscriber: FanoutSubscriber) -> int:
        """Degrade a subscriber to snapshot-resync (client saw a gap).

        Its backlog is dropped into the broker's accounting and the next
        flush delivers a fresh snapshot.  Returns the backlog size shed.
        """
        return self._shed(subscriber)

    # -- flush-time delivery -----------------------------------------------------

    def flush(self) -> FlushReport:
        """Flush every dirty room and resync every shed subscriber.

        Rendering is O(dirty rooms): one delta render per flushed room and
        one snapshot render per room with resyncing subscribers, whatever
        the subscriber count.  After ``flush`` returns, every connected
        subscriber's queue ends at the room's current version.
        """
        self._cache.reset()
        hits_before, misses_before = self._cache.hits, self._cache.misses
        report = FlushReport(rooms=len(self._rooms))
        fault = self.broker.fault_injector
        for room_name in sorted(self._rooms):
            room = self._rooms[room_name]
            members = self._subscribers.get(room_name, {})
            record = room.flush()
            if record is not None:
                report.deltas += 1
                report.coalesced += record.coalesced
                self._m_deltas.inc(room=room_name)
                if record.coalesced:
                    self._m_coalesced.inc(record.coalesced, room=room_name)
                payload = self._render(
                    room_name, KIND_DELTA, record.version,
                    lambda: room.delta_payload(record))
                message = self._message(room_name, payload.text)
                for sid in sorted(members):
                    subscriber = members[sid]
                    if fault is not None:
                        try:
                            fault.check("broker",
                                        f"{TOPIC_PREFIX}{room_name}.{sid}")
                        except ReproError:
                            report.faulted += 1
                            report.shed_subscribers += 1
                            report.shed_messages += self._shed(subscriber)
                            continue
                    accepted, evicted = subscriber.subscription.offer(message)
                    if accepted:
                        self.broker.stats.delivered += 1
                        subscriber.version = record.version
                        report.delivered += 1
                    else:
                        # Already shed: the message is lost to backpressure.
                        self._count_drop(room_name)
                        report.shed_messages += 1
                    if evicted is not None:
                        # Queue overflow: the consumer is past its HWM —
                        # count the eviction, then shed the rest of its
                        # backlog and demand a snapshot resync.
                        self._count_drop(room_name)
                        report.shed_subscribers += 1
                        report.shed_messages += 1 + self._shed(subscriber)
            # Resync pass: every shed subscriber gets a fresh snapshot at
            # the room's (just flushed) current version, rendered once.
            for sid in sorted(members):
                subscriber = members[sid]
                if not subscriber.subscription.resync_pending:
                    continue
                if fault is not None:
                    try:
                        fault.check("broker",
                                    f"{TOPIC_PREFIX}{room_name}.{sid}")
                    except ReproError:
                        report.faulted += 1
                        continue  # stays shed; retried next flush
                payload = self._render(room_name, KIND_SNAPSHOT, room.version,
                                       room.snapshot_payload)
                subscriber.subscription.resume()
                self._offer(subscriber, payload.text)
                subscriber.version = room.version
                subscriber.resyncs += 1
                report.resyncs += 1
                report.snapshots += 1
                self._m_resyncs.inc(room=room_name)
                self._m_snapshots.inc(room=room_name)
            self._g_subscribers.set(len(members), room=room_name)
        report.renders = self._cache.misses - misses_before
        report.render_hits = self._cache.hits - hits_before
        self._g_rooms.set(len(self._rooms))
        return report

    # -- internals ---------------------------------------------------------------

    def _render(self, room_name: str, kind: str, version: int,
                builder: Callable[[], Dict[str, Any]]) -> RenderedPayload:
        """Render one (room, version, kind) payload through the cache."""
        return self._cache.get_or_build(
            (f"{room_name}@{version}", kind),
            lambda: RenderedPayload(format=kind,
                                    text=canonical_json(builder())))

    def _message(self, room_name: str, text: str) -> Message:
        self._sequence += 1
        return Message(topic=TOPIC_PREFIX + room_name, payload=text,
                       sequence=self._sequence)

    def _offer(self, subscriber: FanoutSubscriber, text: str) -> bool:
        """Offer one payload to one subscriber, with broker accounting."""
        message = self._message(subscriber.room, text)
        accepted, evicted = subscriber.subscription.offer(message)
        if accepted:
            self.broker.stats.delivered += 1
        else:
            self._count_drop(subscriber.room)
        if evicted is not None:
            self._count_drop(subscriber.room)
            self._shed(subscriber)
        return accepted

    def _count_drop(self, room_name: str) -> None:
        topic = TOPIC_PREFIX + room_name
        self.broker.stats.dropped += 1
        self.broker.stats.dropped_topics[topic] = (
            self.broker.stats.dropped_topics.get(topic, 0) + 1)

    def _shed(self, subscriber: FanoutSubscriber) -> int:
        """Shed a lagging subscriber's backlog into the drop accounting."""
        backlog = subscriber.subscription.shed()
        if backlog:
            topic = TOPIC_PREFIX + subscriber.room
            self.broker.stats.dropped += backlog
            self.broker.stats.dropped_topics[topic] = (
                self.broker.stats.dropped_topics.get(topic, 0) + backlog)
        self._m_shed.inc(backlog, room=subscriber.room)
        return backlog


class FanoutClient:
    """Client-side protocol driver: drain, apply, detect gaps.

    Used by tests, the bench and the ``caop fanout`` demo.  ``pump`` drains
    the subscriber queue and applies each payload to a local state copy; a
    delta whose ``since`` doesn't match the client's version is a **gap**
    (history fell off or messages were lost) and triggers
    :meth:`FanoutHub.request_resync` — the next flush re-bases the client
    on a fresh snapshot.
    """

    def __init__(self, hub: FanoutHub, room: str, last_seen: int = 0,
                 max_pending: Optional[int] = None) -> None:
        self._hub = hub
        self.room = room
        self.version = last_seen
        self.state: Dict[str, Any] = {}
        self.versions_seen: List[int] = []
        self.gaps = 0
        self.snapshots = 0
        self.deltas = 0
        self.subscriber = hub.subscribe(room, last_seen=last_seen,
                                        max_pending=max_pending)

    def pump(self) -> int:
        """Drain and apply every queued payload; returns how many applied."""
        applied = 0
        for message in self.subscriber.subscription.drain():
            data = json.loads(message.payload)
            if data["kind"] == KIND_SNAPSHOT:
                self.state = dict(data["state"])
                self.version = data["version"]
                self.snapshots += 1
            else:
                if data["since"] != self.version:
                    # Gap: we can't apply this delta; demand a snapshot
                    # resync (which also clears the rest of the queue).
                    self.gaps += 1
                    self._hub.request_resync(self.subscriber)
                    return applied
                for key, value in data["upserts"].items():
                    self.state[key] = value
                for key in data["deletes"]:
                    self.state.pop(key, None)
                self.version = data["version"]
                self.deltas += 1
            if not self.versions_seen or self.versions_seen[-1] < self.version:
                self.versions_seen.append(self.version)
            applied += 1
        return applied

    def state_text(self) -> str:
        """The client's materialized state in canonical wire form."""
        return canonical_json(self.state)

    def disconnect(self) -> None:
        """Leave the room and release the queue."""
        self._hub.unsubscribe(self.subscriber)
