"""Dashboard renderers: ASCII (terminal), HTML, and detail views.

These are the reproductions of the paper's figures:

- :func:`render_topology` — Fig. 2 (topology + alarm circles + rIoC stars);
- :func:`render_node_details` — Fig. 3 (node visualization data);
- :func:`render_issue_details` — Fig. 4 (security-issue detail: CVE,
  description, threat score, affected infrastructure).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.ioc import ReducedIoc
from ..infra import Severity
from .state import DashboardState

_SEVERITY_GLYPH = {
    Severity.GREEN: "o",
    Severity.YELLOW: "!",
    Severity.RED: "X",
}


def render_topology(state: DashboardState) -> str:
    """ASCII rendering of Fig. 2: one box per node with its two badges."""
    lines: List[str] = ["Infrastructure topology", "=" * 52]
    for badge in state.badges():
        glyph = _SEVERITY_GLYPH[badge.alarm_severity]
        details = state.node_details(badge.node)
        lines.append(
            f"({glyph}{badge.alarm_count:>3})  [{badge.node:<10}]"
            f"  *{badge.rioc_count:<3}"
            f"  {details.operating_system:<8} {details.node_type}"
        )
    lines.append("-" * 52)
    lines.append("legend: (o/!/X n) alarms+severity   *n rIoCs")
    return "\n".join(lines)


def render_node_details(state: DashboardState, node: str) -> str:
    """ASCII rendering of Fig. 3: the node-details tab plus its issues."""
    details = state.node_details(node)
    badge = state.badge(node)
    lines = [
        f"Node: {details.name}",
        "=" * 52,
        f"  type:             {details.node_type}",
        f"  operating system: {details.operating_system}",
        f"  networks:         {', '.join(details.networks)}",
        f"  IP addresses:     {', '.join(details.ip_addresses) or '-'}",
        f"  known remote IPs: {', '.join(details.known_remote_ips[:5]) or '-'}"
        + (" ..." if len(details.known_remote_ips) > 5 else ""),
        f"  applications:     {', '.join(details.applications)}",
        f"  alarms:           {badge.alarm_count} (worst: {badge.alarm_severity})",
        f"  rIoCs:            {badge.rioc_count}",
    ]
    alarms = state.alarms_for(node)
    if alarms:
        lines.append("  recent alarms:")
        for alarm in alarms[-5:]:
            lines.append(
                f"    [{alarm.severity:<6}] {alarm.ip_src} -> {alarm.ip_dst}: "
                f"{alarm.description[:60]}")
    return "\n".join(lines)


def render_issue_details(rioc: ReducedIoc) -> str:
    """ASCII rendering of Fig. 4: one rIoC's security-issue card."""
    lines = [
        "Security issue (rIoC)",
        "=" * 52,
        f"  vulnerabilities:      {rioc.vulnerability_count}",
        f"  CVE:                  {rioc.cve or '-'}",
        f"  threat score:         {rioc.threat_score:.4f} / 5",
        f"  affected application: {rioc.affected_application or '-'}",
        f"  affected nodes:       {', '.join(rioc.nodes)}"
        + ("  (common keyword)" if rioc.via_common_keyword else ""),
        f"  description:          {rioc.description[:160]}",
        f"  eIoC link:            misp://events/{rioc.eioc_uuid}",
    ]
    return "\n".join(lines)


_HEALTH_GLYPH = {
    "ok": "+",
    "degraded": "!",
    "failing": "X",
}


def render_health(health) -> str:
    """ASCII health panel: one marker line per component, worst-state header.

    ``health`` is a :class:`~repro.resilience.PlatformHealth` snapshot
    (feed breakers, pipeline stages, dead-letter queue).
    """
    overall = health.overall()
    lines: List[str] = [
        f"Platform health: {overall.upper()}",
        "=" * 52,
    ]
    for component in health.components:
        glyph = _HEALTH_GLYPH.get(component.status, "?")
        line = f"  [{glyph}] {component.component:<24} {component.status}"
        if component.detail:
            line += f"  ({component.detail[:48]})"
        lines.append(line)
    lines.append("-" * 52)
    lines.append("legend: [+] ok   [!] degraded   [X] failing")
    return "\n".join(lines)


_SEVERITY_COLOUR = {
    Severity.GREEN: "#2e7d32",
    Severity.YELLOW: "#f9a825",
    Severity.RED: "#c62828",
}


def render_html(state: DashboardState, title: str = "CAOP Dashboard") -> str:
    """Self-contained HTML snapshot of the dashboard (Fig. 2 web view)."""
    rows: List[str] = []
    for badge in state.badges():
        details = state.node_details(badge.node)
        colour = _SEVERITY_COLOUR[badge.alarm_severity]
        riocs = state.riocs_for(badge.node)
        rioc_items = "".join(
            f"<li>{r.cve or 'n/a'} (TS {r.threat_score:.2f}) — "
            f"{r.affected_application}</li>"
            for r in riocs[:10]
        )
        rows.append(
            "<div class='node'>"
            f"<span class='alarm' style='background:{colour}'>{badge.alarm_count}</span>"
            f"<h3>{badge.node}</h3>"
            f"<span class='star'>&#9733; {badge.rioc_count}</span>"
            f"<p>{details.operating_system} · {details.node_type} · "
            f"{', '.join(details.networks)}</p>"
            f"<ul>{rioc_items}</ul>"
            "</div>"
        )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title>"
        "<style>"
        ".node{border:1px solid #ccc;border-radius:8px;padding:8px;margin:8px;"
        "display:inline-block;min-width:220px;position:relative}"
        ".alarm{color:#fff;border-radius:50%;padding:4px 9px;position:absolute;"
        "top:-10px;left:-10px;font-weight:bold}"
        ".star{color:#f9a825;position:absolute;bottom:4px;right:8px}"
        "h3{margin:4px 0}"
        "</style></head><body>"
        f"<h1>{title}</h1>{''.join(rows)}</body></html>"
    )


def render_fanout(hub, report) -> str:
    """ASCII summary of one fan-out flush (the ``caop fanout`` demo view)."""
    lines: List[str] = ["Fan-out flush", "=" * 52]
    for name in hub.room_names():
        room = hub.room(name)
        lines.append(
            f"  room {name:<10} v{room.version:<6}"
            f" keys={len(room.state()):<6}"
            f" subscribers={hub.subscriber_count(name)}")
    lines.append("-" * 52)
    lines.append(
        f"  deltas={report.deltas} delivered={report.delivered}"
        f" coalesced={report.coalesced} renders={report.renders}"
        f" render_hits={report.render_hits}")
    lines.append(
        f"  shed={report.shed_messages} resyncs={report.resyncs}"
        f" snapshots={report.snapshots}")
    return "\n".join(lines)
