"""Dashboard server: the socket.io endpoint the platform pushes rIoCs to.

"this related information is extracted and used to build the rIoC, which
will be sent directly to the Dashboard through specific web sockets,
developed relying on the socket.io library" (§IV-A).
"""

from __future__ import annotations

from typing import Any, Optional

from ..bus import MessageBroker, SocketIOClient, SocketIOServer
from ..clock import parse_timestamp
from ..core.ioc import ReducedIoc
from ..infra import Alarm, Inventory
from ..obs import MetricsRegistry, NULL_REGISTRY
from .fanout import FanoutClient, FanoutHub, FlushReport
from .state import DashboardState

EVENT_RIOC = "rioc"
EVENT_ALARM = "alarm"
ROOM_ANALYSTS = "analysts"

#: Fan-out rooms the server materializes (snapshot+delta protocol).
ROOM_RIOCS = "riocs"
ROOM_ALARMS = "alarms"
ROOM_BADGES = "badges"
ROOM_KEYWORDS = "keywords"
ROOM_GRAPH = "graph"


class DashboardServer:
    """Owns the dashboard state and its socket.io transport."""

    def __init__(self, inventory: Inventory,
                 broker: Optional[MessageBroker] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 fanout_history: int = 64,
                 fanout_max_pending: int = 64) -> None:
        self.state = DashboardState(inventory)
        self.sio = SocketIOServer(broker=broker)
        self.metrics = metrics or NULL_REGISTRY
        #: Snapshot+delta hub serving the massive-subscriber rooms; rides
        #: the same broker as the socket.io mirror so its drop accounting
        #: lands in the shared BrokerStats ledger.
        self.fanout = FanoutHub(broker=self.sio.broker, metrics=metrics,
                                history=fanout_history,
                                max_pending=fanout_max_pending)
        #: Latest :class:`~repro.resilience.PlatformHealth` snapshot the
        #: platform pushed (None until the first cycle completes).
        self.health: Optional[Any] = None
        self._m_pushes = self.metrics.counter(
            "caop_dashboard_pushes_total",
            "socket.io emits to analyst clients, labelled by event kind")
        # The dashboard web app itself is one socket.io client.
        self._app_client = self.sio.connect()
        self.sio.enter_room(self._app_client, ROOM_ANALYSTS)
        self._app_client.on(EVENT_RIOC, self._on_rioc)
        self._app_client.on(EVENT_ALARM, self._on_alarm)

    # -- push API used by the platform ------------------------------------------

    def push_rioc(self, rioc: ReducedIoc) -> int:
        """Emit an rIoC to every connected analyst client."""
        delivered = self.sio.emit(EVENT_RIOC, rioc.to_dict(), room=ROOM_ANALYSTS)
        self._m_pushes.inc(delivered, event=EVENT_RIOC)
        # Stage the same rIoC into the fan-out room: subscribers receive it
        # as one coalesced delta on the next flush, not one emit per client.
        self.fanout.publish(ROOM_RIOCS, rioc.eioc_uuid, rioc.to_dict())
        return delivered

    def push_alarm(self, alarm: Alarm) -> int:
        """Emit an alarm to every analyst client."""
        payload = {
            "node": alarm.node,
            "severity": alarm.severity,
            "description": alarm.description,
            "ip_src": alarm.ip_src,
            "ip_dst": alarm.ip_dst,
            "signature": alarm.signature,
            "application": alarm.application,
            "count": alarm.count,
            "timestamp": alarm.timestamp.isoformat() if alarm.timestamp else None,
        }
        delivered = self.sio.emit(EVENT_ALARM, payload, room=ROOM_ANALYSTS)
        self._m_pushes.inc(delivered, event=EVENT_ALARM)
        # Last alarm per node, coalesced: a node alarming 50 times between
        # flushes costs one delta entry.
        self.fanout.publish(ROOM_ALARMS, alarm.node, payload)
        return delivered

    def connect_client(self) -> SocketIOClient:
        """Attach an extra analyst browser session."""
        client = self.sio.connect()
        self.sio.enter_room(client, ROOM_ANALYSTS)
        return client

    def update_health(self, health: Any) -> None:
        """Record the platform's latest component-health snapshot."""
        self.health = health

    # -- snapshot+delta fan-out ---------------------------------------------------

    def sync_view_rooms(self, graph_view: Optional[Any] = None,
                        keyword_view: Optional[Any] = None) -> int:
        """Diff the materialized views and badges into their fan-out rooms.

        Each room is synced against a full mapping with pruning, so only
        keys that actually changed since the last sync become delta
        entries — an unchanged view stages nothing.  Returns the number of
        staged keys across all rooms.
        """
        staged = self.fanout.sync_map(ROOM_BADGES, self.state.badge_map())
        if keyword_view is not None:
            staged += self.fanout.sync_map(
                ROOM_KEYWORDS,
                {category: count for category, count
                 in keyword_view.frequencies().items()})
        if graph_view is not None:
            staged += self.fanout.sync_map(ROOM_GRAPH, graph_view.summary())
        return staged

    def flush_fanout(self) -> FlushReport:
        """Flush every dirty fan-out room (one delta render per room)."""
        return self.fanout.flush()

    def attach_subscribers(self, count: int,
                           room: str = ROOM_RIOCS) -> list:
        """Attach ``count`` protocol-driving clients to a fan-out room."""
        return [FanoutClient(self.fanout, room) for _ in range(count)]

    # -- telemetry view -----------------------------------------------------------

    def render_metrics(self, accept: str = "text/plain") -> str:
        """The ``/metrics`` surface: platform telemetry in the asked format.

        ``accept`` follows content negotiation: any media type mentioning
        ``json`` returns the JSON snapshot; everything else (the scraper
        default) returns Prometheus-style text exposition.
        """
        if "json" in accept.lower():
            return self.metrics.render_json(indent=2)
        return self.metrics.render_prometheus()

    # -- event handlers keeping the state current --------------------------------

    def _on_rioc(self, data: Any) -> None:
        self.state.ingest_rioc_dict(data)

    def _on_alarm(self, data: Any) -> None:
        # parse_timestamp tolerates naive and Z-suffixed strings alike and
        # always yields an aware UTC datetime.
        timestamp = None
        if data.get("timestamp"):
            timestamp = parse_timestamp(data["timestamp"])
        self.state.ingest_alarm(Alarm(
            node=data["node"],
            severity=data["severity"],
            description=data.get("description", ""),
            ip_src=data.get("ip_src", ""),
            ip_dst=data.get("ip_dst", ""),
            signature=data.get("signature", ""),
            application=data.get("application", ""),
            count=int(data.get("count", 1)),
            timestamp=timestamp,
        ))
