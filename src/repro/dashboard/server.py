"""Dashboard server: the socket.io endpoint the platform pushes rIoCs to.

"this related information is extracted and used to build the rIoC, which
will be sent directly to the Dashboard through specific web sockets,
developed relying on the socket.io library" (§IV-A).
"""

from __future__ import annotations

from typing import Any, Optional

from ..bus import MessageBroker, SocketIOClient, SocketIOServer
from ..core.ioc import ReducedIoc
from ..infra import Alarm, Inventory
from .state import DashboardState

EVENT_RIOC = "rioc"
EVENT_ALARM = "alarm"
ROOM_ANALYSTS = "analysts"


class DashboardServer:
    """Owns the dashboard state and its socket.io transport."""

    def __init__(self, inventory: Inventory,
                 broker: Optional[MessageBroker] = None) -> None:
        self.state = DashboardState(inventory)
        self.sio = SocketIOServer(broker=broker)
        # The dashboard web app itself is one socket.io client.
        self._app_client = self.sio.connect()
        self.sio.enter_room(self._app_client, ROOM_ANALYSTS)
        self._app_client.on(EVENT_RIOC, self._on_rioc)
        self._app_client.on(EVENT_ALARM, self._on_alarm)

    # -- push API used by the platform ------------------------------------------

    def push_rioc(self, rioc: ReducedIoc) -> int:
        """Emit an rIoC to every connected analyst client."""
        return self.sio.emit(EVENT_RIOC, rioc.to_dict(), room=ROOM_ANALYSTS)

    def push_alarm(self, alarm: Alarm) -> int:
        """Emit an alarm to every analyst client."""
        payload = {
            "node": alarm.node,
            "severity": alarm.severity,
            "description": alarm.description,
            "ip_src": alarm.ip_src,
            "ip_dst": alarm.ip_dst,
            "signature": alarm.signature,
            "application": alarm.application,
            "count": alarm.count,
            "timestamp": alarm.timestamp.isoformat() if alarm.timestamp else None,
        }
        return self.sio.emit(EVENT_ALARM, payload, room=ROOM_ANALYSTS)

    def connect_client(self) -> SocketIOClient:
        """Attach an extra analyst browser session."""
        client = self.sio.connect()
        self.sio.enter_room(client, ROOM_ANALYSTS)
        return client

    # -- event handlers keeping the state current --------------------------------

    def _on_rioc(self, data: Any) -> None:
        self.state.ingest_rioc_dict(data)

    def _on_alarm(self, data: Any) -> None:
        import datetime as _dt
        timestamp = None
        if data.get("timestamp"):
            timestamp = _dt.datetime.fromisoformat(data["timestamp"])
        self.state.ingest_alarm(Alarm(
            node=data["node"],
            severity=data["severity"],
            description=data.get("description", ""),
            ip_src=data.get("ip_src", ""),
            ip_dst=data.get("ip_dst", ""),
            signature=data.get("signature", ""),
            application=data.get("application", ""),
            count=int(data.get("count", 1)),
            timestamp=timestamp,
        ))
