"""Output module: dashboard state, renderers, views, sessions, server."""

from .geo import GeoHit, GeoStoreRollup, GeoSummaryView, LOCATION_INDEX
from .render import (
    render_health,
    render_html,
    render_issue_details,
    render_node_details,
    render_topology,
)
from .sessions import Action, AnalystSession, SessionEvent, SessionRecorder
from .server import EVENT_ALARM, EVENT_RIOC, ROOM_ANALYSTS, DashboardServer
from .state import DashboardState, NodeBadge, NodeDetails
from .views import (
    CorrelationGraphView,
    EventJourneyView,
    KeywordSummaryView,
    TimelineBucket,
    TimelineView,
    sparkline,
)

__all__ = [
    "GeoHit",
    "GeoStoreRollup",
    "GeoSummaryView",
    "LOCATION_INDEX",
    "Action",
    "AnalystSession",
    "SessionEvent",
    "SessionRecorder",
    "render_health",
    "render_html",
    "render_issue_details",
    "render_node_details",
    "render_topology",
    "EVENT_ALARM",
    "EVENT_RIOC",
    "ROOM_ANALYSTS",
    "DashboardServer",
    "DashboardState",
    "NodeBadge",
    "NodeDetails",
    "CorrelationGraphView",
    "EventJourneyView",
    "KeywordSummaryView",
    "TimelineBucket",
    "TimelineView",
    "sparkline",
]
