"""Specialized visualization models (§II-B).

The paper calls for "a rich set of specialized visualization models that
handle diverse types of data e.g., high-dimensional, temporal, textual,
relational, spatial" and for views of "data that is under constant change".
Three such models over the platform's live data:

- :class:`TimelineView` — *temporal*: alarms/rIoCs bucketed over time with
  an ASCII sparkline (streaming-friendly: ingest as events arrive);
- :class:`CorrelationGraphView` — *relational*: the MISP correlation graph
  between events, with connected-component analysis;
- :class:`KeywordSummaryView` — *textual*: threat-category keyword
  frequencies across stored intelligence, as a bar summary;
- :class:`EventJourneyView` — *provenance*: one IoC's recorded journey
  through the pipeline (fetch -> parse -> enrich -> score -> reduce ->
  share), read from the store's provenance table.

The store-backed views are :class:`~repro.core.deltas.StoreRollup`
materializations: they consume the store's change feed on read (or via the
platform's rollup stage) instead of re-scanning every stored event, so a
render after a quiet cycle costs one empty feed query.  Construct them with
``persistent=True`` to checkpoint their state into the store's
``rollup_state`` table and resume without rescans after a reopen.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..clock import ensure_utc
from ..core.deltas import StoreRollup
from ..core.ioc import ReducedIoc
from ..errors import ValidationError
from ..infra import Alarm
from ..misp import MispStore
from ..misp.model import MispEvent
from ..nlp import ThreatTagger

_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(counts: Sequence[int]) -> str:
    """Render counts as a density string (one glyph per bucket)."""
    if not counts:
        return ""
    peak = max(counts)
    if peak == 0:
        return _SPARK_GLYPHS[0] * len(counts)
    out = []
    for count in counts:
        index = round(count / peak * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[index])
    return "".join(out)


@dataclass(frozen=True)
class TimelineBucket:
    """One time bucket with its alarm/rIoC counts."""
    start: _dt.datetime
    alarms: int
    riocs: int


class TimelineView:
    """Temporal view: events bucketed into fixed windows."""

    def __init__(self, bucket: _dt.timedelta = _dt.timedelta(minutes=30)) -> None:
        if bucket <= _dt.timedelta(0):
            raise ValidationError("bucket width must be positive")
        self._bucket = bucket
        self._alarm_times: List[_dt.datetime] = []
        self._rioc_times: List[_dt.datetime] = []

    def ingest_alarm(self, alarm: Alarm) -> None:
        """Record one alarm against its node."""
        if alarm.timestamp is not None:
            self._alarm_times.append(ensure_utc(alarm.timestamp))

    def ingest_rioc(self, rioc: ReducedIoc) -> None:
        """Record an rIoC on every node it references."""
        if rioc.created_at is not None:
            self._rioc_times.append(ensure_utc(rioc.created_at))

    def buckets(self) -> List[TimelineBucket]:
        """The time buckets with their event counts."""
        times = self._alarm_times + self._rioc_times
        if not times:
            return []
        start = min(times)
        end = max(times)
        width = self._bucket
        count = int((end - start) / width) + 1
        alarm_counts = [0] * count
        rioc_counts = [0] * count
        for stamp in self._alarm_times:
            alarm_counts[int((stamp - start) / width)] += 1
        for stamp in self._rioc_times:
            rioc_counts[int((stamp - start) / width)] += 1
        return [
            TimelineBucket(start=start + index * width,
                           alarms=alarm_counts[index],
                           riocs=rioc_counts[index])
            for index in range(count)
        ]

    def render(self) -> str:
        """Render this view as printable text."""
        buckets = self.buckets()
        if not buckets:
            return "Timeline: no data"
        alarms = [b.alarms for b in buckets]
        riocs = [b.riocs for b in buckets]
        lines = [
            f"Timeline ({len(buckets)} buckets of {self._bucket})",
            f"  alarms [{sparkline(alarms)}]  total {sum(alarms)}",
            f"  riocs  [{sparkline(riocs)}]  total {sum(riocs)}",
            f"  from {buckets[0].start.isoformat()} "
            f"to {buckets[-1].start.isoformat()}",
        ]
        return "\n".join(lines)


class CorrelationGraphView(StoreRollup):
    """Relational view: the event-correlation graph inside the MISP store.

    Maintained incrementally: the graph is materialized once and then fed
    deltas from the change feed.  Semantics match the historical full
    rescan exactly, including its ghost-node behaviour — a deleted event
    that still appears in a live event's correlation rows stays in the
    graph as an attribute-less node, while a deleted event with no live
    correlation partner vanishes.
    """

    def __init__(self, store: MispStore,
                 name: str = "rollup:correlation-graph",
                 persistent: bool = False) -> None:
        self._graph = nx.Graph()
        #: Events currently stored (nodes carrying an ``info`` attribute);
        #: nodes outside this set are ghosts kept alive by live partners.
        self._live: set = set()
        super().__init__(store, name, persistent=persistent)

    def apply_delta(self, events: Sequence[MispEvent],
                    deleted: Sequence[str]) -> None:
        for uuid in deleted:
            self._retire(uuid)
        events = list(events)
        if not events:
            return
        for event in events:
            self._live.add(event.uuid)
            self._graph.add_node(event.uuid, info=event.info)
        rows = self.store.correlations_for_events(
            [event.uuid for event in events])
        for event in events:
            for correlation in rows[event.uuid]:
                self._graph.add_edge(
                    correlation["source_event"], correlation["target_event"],
                    value=correlation["value"])

    def _retire(self, uuid: str) -> None:
        self._live.discard(uuid)
        if uuid not in self._graph:
            return
        # Full-rescan equivalence: edges only exist while at least one
        # endpoint is live (rescans walk correlations via live events).
        self._graph.nodes[uuid].pop("info", None)
        for neighbor in list(self._graph.neighbors(uuid)):
            if neighbor not in self._live:
                self._graph.remove_edge(uuid, neighbor)
                if self._graph.degree[neighbor] == 0:
                    self._graph.remove_node(neighbor)
        if uuid in self._graph and self._graph.degree[uuid] == 0:
            self._graph.remove_node(uuid)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "nodes": {uuid: (attrs.get("info") if uuid in self._live
                             else None)
                      for uuid, attrs in self._graph.nodes(data=True)},
            "edges": sorted(
                [sorted((a, b)) + [attrs["value"]]
                 for a, b, attrs in self._graph.edges(data=True)]),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._graph = nx.Graph()
        self._live = set()
        for uuid, info in state.get("nodes", {}).items():
            if info is None:
                self._graph.add_node(uuid)
            else:
                self._graph.add_node(uuid, info=info)
                self._live.add(uuid)
        for a, b, value in state.get("edges", []):
            self._graph.add_edge(a, b, value=value)

    def graph(self) -> nx.Graph:
        """Events as nodes, value-correlations as labelled edges."""
        self.refresh()
        return self._graph.copy()

    def components(self) -> List[List[str]]:
        """Connected components (clusters of related intelligence)."""
        self.refresh()
        return sorted(sorted(component)
                      for component in nx.connected_components(self._graph))

    def hubs(self, top: int = 5) -> List[Tuple[str, int]]:
        """The most-correlated events (highest degree)."""
        self.refresh()
        ranked = sorted(self._graph.degree,
                        key=lambda pair: (-pair[1], pair[0]))
        return [(uuid, degree) for uuid, degree in ranked[:top] if degree > 0]

    def summary(self) -> Dict[str, int]:
        """Headline graph stats, JSON-ready (the fan-out ``graph`` room)."""
        self.refresh()
        clusters = [c for c in self.components() if len(c) > 1]
        return {
            "events": self._graph.number_of_nodes(),
            "correlations": self._graph.number_of_edges(),
            "clusters": len(clusters),
        }

    def render(self, top: int = 5) -> str:
        """Render this view as printable text."""
        self.refresh()
        clusters = [c for c in self.components() if len(c) > 1]
        lines = [
            "Correlation graph",
            f"  events:        {self._graph.number_of_nodes()}",
            f"  correlations:  {self._graph.number_of_edges()}",
            f"  clusters (>1): {len(clusters)}",
        ]
        for uuid, degree in self.hubs(top):
            info = self._graph.nodes[uuid].get("info", "")[:50]
            lines.append(f"  hub {uuid[:8]} degree={degree}  {info}")
        return "\n".join(lines)


class KeywordSummaryView(StoreRollup):
    """Textual view: threat-category keyword frequencies across the store.

    Maintained incrementally: per-event keyword contributions are kept so
    updates and deletes retire an event's old counts before folding the
    new ones in — totals always equal what a full rescan would produce.
    """

    def __init__(self, store: MispStore,
                 tagger: Optional[ThreatTagger] = None,
                 name: str = "rollup:keyword-summary",
                 persistent: bool = False) -> None:
        self._tagger = tagger or ThreatTagger()
        #: event uuid -> its category contribution (only non-empty ones).
        self._contrib: Dict[str, Dict[str, int]] = {}
        self._totals: Counter = Counter()
        super().__init__(store, name, persistent=persistent)

    def apply_delta(self, events: Sequence[MispEvent],
                    deleted: Sequence[str]) -> None:
        for uuid in deleted:
            self._retire(uuid)
        for event in events:
            self._retire(event.uuid)
            text = event.info + " " + " ".join(
                attribute.value for attribute in event.attributes
                if attribute.type == "text")
            counts = {category: len(keywords)
                      for category, keywords in self._tagger.tag(text).items()}
            if counts:
                self._contrib[event.uuid] = counts
                for category, count in counts.items():
                    self._totals[category] += count

    def _retire(self, uuid: str) -> None:
        old = self._contrib.pop(uuid, None)
        if old:
            for category, count in old.items():
                self._totals[category] -= count
                if self._totals[category] <= 0:
                    del self._totals[category]

    def state_dict(self) -> Dict[str, Any]:
        return {"contrib": self._contrib}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._contrib = {uuid: dict(counts)
                         for uuid, counts in state.get("contrib", {}).items()}
        self._totals = Counter()
        for counts in self._contrib.values():
            self._totals.update(counts)

    def frequencies(self) -> Dict[str, int]:
        """Threat-category keyword counts across the store.

        Sorted by descending count (then category) so the mapping is
        deterministic regardless of the order deltas arrived in.
        """
        self.refresh()
        return {category: count for category, count in sorted(
            self._totals.items(), key=lambda pair: (-pair[1], pair[0]))}

    def render(self, width: int = 40) -> str:
        """Render this view as printable text."""
        frequencies = self.frequencies()
        if not frequencies:
            return "Keyword summary: no threat keywords found"
        peak = max(frequencies.values())
        lines = ["Threat keyword summary"]
        for category, count in sorted(frequencies.items(),
                                      key=lambda pair: -pair[1]):
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"  {category:<28} {bar} {count}")
        return "\n".join(lines)


class EventJourneyView:
    """Provenance view: one IoC's journey through the pipeline stages."""

    def __init__(self, store: MispStore) -> None:
        self._store = store

    def journey(self, event_uuid: Optional[str] = None
                ) -> List[Dict[str, object]]:
        """The lineage rows for ``event_uuid`` (latest traced by default)."""
        if event_uuid is None:
            event_uuid = self._store.latest_traced_event()
        if event_uuid is None:
            return []
        return self._store.provenance_for_event(event_uuid)

    def render(self, event_uuid: Optional[str] = None) -> str:
        """Render this view as printable text."""
        if event_uuid is None:
            event_uuid = self._store.latest_traced_event()
        if event_uuid is None:
            return "Event journey: no provenance recorded"
        rows = self._store.provenance_for_event(event_uuid)
        lines = [f"Event journey {event_uuid}"]
        if not rows:
            lines.append("  (no lineage recorded for this event)")
            return "\n".join(lines)
        lines.append(f"  trace {rows[0]['trace_id']}")
        for row in rows:
            actor = f" by {row['actor']}" if row["actor"] else ""
            detail = f"  {row['detail']}" if row["detail"] else ""
            lines.append(f"  c{row['cycle']:<3} {row['kind']:<13}"
                         f"{actor}{detail}")
        return "\n".join(lines)
