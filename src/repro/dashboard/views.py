"""Specialized visualization models (§II-B).

The paper calls for "a rich set of specialized visualization models that
handle diverse types of data e.g., high-dimensional, temporal, textual,
relational, spatial" and for views of "data that is under constant change".
Three such models over the platform's live data:

- :class:`TimelineView` — *temporal*: alarms/rIoCs bucketed over time with
  an ASCII sparkline (streaming-friendly: ingest as events arrive);
- :class:`CorrelationGraphView` — *relational*: the MISP correlation graph
  between events, with connected-component analysis;
- :class:`KeywordSummaryView` — *textual*: threat-category keyword
  frequencies across stored intelligence, as a bar summary;
- :class:`EventJourneyView` — *provenance*: one IoC's recorded journey
  through the pipeline (fetch -> parse -> enrich -> score -> reduce ->
  share), read from the store's provenance table.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..clock import ensure_utc
from ..core.ioc import ReducedIoc
from ..errors import ValidationError
from ..infra import Alarm
from ..misp import MispStore
from ..nlp import ThreatTagger

_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(counts: Sequence[int]) -> str:
    """Render counts as a density string (one glyph per bucket)."""
    if not counts:
        return ""
    peak = max(counts)
    if peak == 0:
        return _SPARK_GLYPHS[0] * len(counts)
    out = []
    for count in counts:
        index = round(count / peak * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[index])
    return "".join(out)


@dataclass(frozen=True)
class TimelineBucket:
    """One time bucket with its alarm/rIoC counts."""
    start: _dt.datetime
    alarms: int
    riocs: int


class TimelineView:
    """Temporal view: events bucketed into fixed windows."""

    def __init__(self, bucket: _dt.timedelta = _dt.timedelta(minutes=30)) -> None:
        if bucket <= _dt.timedelta(0):
            raise ValidationError("bucket width must be positive")
        self._bucket = bucket
        self._alarm_times: List[_dt.datetime] = []
        self._rioc_times: List[_dt.datetime] = []

    def ingest_alarm(self, alarm: Alarm) -> None:
        """Record one alarm against its node."""
        if alarm.timestamp is not None:
            self._alarm_times.append(ensure_utc(alarm.timestamp))

    def ingest_rioc(self, rioc: ReducedIoc) -> None:
        """Record an rIoC on every node it references."""
        if rioc.created_at is not None:
            self._rioc_times.append(ensure_utc(rioc.created_at))

    def buckets(self) -> List[TimelineBucket]:
        """The time buckets with their event counts."""
        times = self._alarm_times + self._rioc_times
        if not times:
            return []
        start = min(times)
        end = max(times)
        width = self._bucket
        count = int((end - start) / width) + 1
        alarm_counts = [0] * count
        rioc_counts = [0] * count
        for stamp in self._alarm_times:
            alarm_counts[int((stamp - start) / width)] += 1
        for stamp in self._rioc_times:
            rioc_counts[int((stamp - start) / width)] += 1
        return [
            TimelineBucket(start=start + index * width,
                           alarms=alarm_counts[index],
                           riocs=rioc_counts[index])
            for index in range(count)
        ]

    def render(self) -> str:
        """Render this view as printable text."""
        buckets = self.buckets()
        if not buckets:
            return "Timeline: no data"
        alarms = [b.alarms for b in buckets]
        riocs = [b.riocs for b in buckets]
        lines = [
            f"Timeline ({len(buckets)} buckets of {self._bucket})",
            f"  alarms [{sparkline(alarms)}]  total {sum(alarms)}",
            f"  riocs  [{sparkline(riocs)}]  total {sum(riocs)}",
            f"  from {buckets[0].start.isoformat()} "
            f"to {buckets[-1].start.isoformat()}",
        ]
        return "\n".join(lines)


class CorrelationGraphView:
    """Relational view: the event-correlation graph inside the MISP store."""

    def __init__(self, store: MispStore) -> None:
        self._store = store

    def graph(self) -> nx.Graph:
        """Events as nodes, value-correlations as labelled edges."""
        graph = nx.Graph()
        for event in self._store.list_events():
            graph.add_node(event.uuid, info=event.info)
            for correlation in self._store.correlations_for_event(event.uuid):
                graph.add_edge(
                    correlation["source_event"], correlation["target_event"],
                    value=correlation["value"])
        return graph

    def components(self) -> List[List[str]]:
        """Connected components (clusters of related intelligence)."""
        graph = self.graph()
        return [sorted(component)
                for component in nx.connected_components(graph)]

    def hubs(self, top: int = 5) -> List[Tuple[str, int]]:
        """The most-correlated events (highest degree)."""
        graph = self.graph()
        ranked = sorted(graph.degree, key=lambda pair: -pair[1])
        return [(uuid, degree) for uuid, degree in ranked[:top] if degree > 0]

    def render(self, top: int = 5) -> str:
        """Render this view as printable text."""
        graph = self.graph()
        clusters = [c for c in self.components() if len(c) > 1]
        lines = [
            "Correlation graph",
            f"  events:        {graph.number_of_nodes()}",
            f"  correlations:  {graph.number_of_edges()}",
            f"  clusters (>1): {len(clusters)}",
        ]
        for uuid, degree in self.hubs(top):
            info = graph.nodes[uuid].get("info", "")[:50]
            lines.append(f"  hub {uuid[:8]} degree={degree}  {info}")
        return "\n".join(lines)


class KeywordSummaryView:
    """Textual view: threat-category keyword frequencies across the store."""

    def __init__(self, store: MispStore,
                 tagger: Optional[ThreatTagger] = None) -> None:
        self._store = store
        self._tagger = tagger or ThreatTagger()

    def frequencies(self) -> Dict[str, int]:
        """Threat-category keyword counts across the store."""
        counter: Counter = Counter()
        for event in self._store.list_events():
            text = event.info + " " + " ".join(
                attribute.value for attribute in event.attributes
                if attribute.type == "text")
            for category, keywords in self._tagger.tag(text).items():
                counter[category] += len(keywords)
        return dict(counter)

    def render(self, width: int = 40) -> str:
        """Render this view as printable text."""
        frequencies = self.frequencies()
        if not frequencies:
            return "Keyword summary: no threat keywords found"
        peak = max(frequencies.values())
        lines = ["Threat keyword summary"]
        for category, count in sorted(frequencies.items(),
                                      key=lambda pair: -pair[1]):
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"  {category:<28} {bar} {count}")
        return "\n".join(lines)


class EventJourneyView:
    """Provenance view: one IoC's journey through the pipeline stages."""

    def __init__(self, store: MispStore) -> None:
        self._store = store

    def journey(self, event_uuid: Optional[str] = None
                ) -> List[Dict[str, object]]:
        """The lineage rows for ``event_uuid`` (latest traced by default)."""
        if event_uuid is None:
            event_uuid = self._store.latest_traced_event()
        if event_uuid is None:
            return []
        return self._store.provenance_for_event(event_uuid)

    def render(self, event_uuid: Optional[str] = None) -> str:
        """Render this view as printable text."""
        if event_uuid is None:
            event_uuid = self._store.latest_traced_event()
        if event_uuid is None:
            return "Event journey: no provenance recorded"
        rows = self._store.provenance_for_event(event_uuid)
        lines = [f"Event journey {event_uuid}"]
        if not rows:
            lines.append("  (no lineage recorded for this event)")
            return "\n".join(lines)
        lines.append(f"  trace {rows[0]['trace_id']}")
        for row in rows:
            actor = f" by {row['actor']}" if row["actor"] else ""
            detail = f"  {row['detail']}" if row["detail"] else ""
            lines.append(f"  c{row['cycle']:<3} {row['kind']:<13}"
                         f"{actor}{detail}")
        return "\n".join(lines)
