"""Dashboard state: topology, per-node badges, detail tabs.

Fig. 2 semantics: the dashboard shows the infrastructure topology; each node
carries an alarm circle (count + worst severity colour) in its upper-left
and an rIoC star (count) in its lower-right.  A separate tab shows node
details: type, IP addresses, operating system, connected networks (§III-C1).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import ValidationError
from ..infra import Alarm, Inventory, Severity
from ..core.ioc import ReducedIoc


@dataclass(frozen=True)
class NodeBadge:
    """What Fig. 2 draws on one node."""

    node: str
    alarm_count: int
    alarm_severity: str  # badge colour
    rioc_count: int


@dataclass(frozen=True)
class NodeDetails:
    """The node-details tab (Fig. 3b)."""

    name: str
    node_type: str
    ip_addresses: Tuple[str, ...]
    known_remote_ips: Tuple[str, ...]
    operating_system: str
    networks: Tuple[str, ...]
    applications: Tuple[str, ...]


class DashboardState:
    """The dashboard's model: a topology graph + live alarms and rIoCs."""

    def __init__(self, inventory: Inventory) -> None:
        self._inventory = inventory
        self.graph = nx.Graph()
        # Star topology around the monitored network's switch — all nodes in
        # the use case share one LAN.
        self.graph.add_node("LAN")
        for node in inventory.nodes:
            self.graph.add_node(node.name)
            self.graph.add_edge("LAN", node.name)
        self._alarms: Dict[str, List[Alarm]] = {n.name: [] for n in inventory.nodes}
        self._riocs: Dict[str, List[ReducedIoc]] = {n.name: [] for n in inventory.nodes}
        self._remote_ips: Dict[str, List[str]] = {n.name: [] for n in inventory.nodes}

    @property
    def inventory(self) -> Inventory:
        """The monitored infrastructure inventory."""
        return self._inventory

    # -- ingestion -------------------------------------------------------------

    def ingest_alarm(self, alarm: Alarm) -> None:
        """Record one alarm against its node."""
        if alarm.node not in self._alarms:
            raise ValidationError(f"alarm for unknown node {alarm.node!r}")
        self._alarms[alarm.node].append(alarm)
        if alarm.ip_src and alarm.ip_src not in self._remote_ips[alarm.node]:
            self._remote_ips[alarm.node].append(alarm.ip_src)

    def ingest_rioc(self, rioc: ReducedIoc) -> None:
        """Record an rIoC on every node it references."""
        for node in rioc.nodes:
            if node not in self._riocs:
                raise ValidationError(f"rIoC references unknown node {node!r}")
            self._riocs[node].append(rioc)

    def ingest_rioc_dict(self, data: Mapping) -> None:
        """socket.io payloads arrive as dicts; revive and ingest."""
        self.ingest_rioc(ReducedIoc.from_dict(data))

    # -- queries ------------------------------------------------------------------

    def badge(self, node: str) -> NodeBadge:
        """The alarm/rIoC badge of one node (Fig. 2)."""
        alarms = self._alarms.get(node, [])
        return NodeBadge(
            node=node,
            alarm_count=sum(a.count for a in alarms),
            alarm_severity=Severity.worst(a.severity for a in alarms),
            rioc_count=len(self._riocs.get(node, [])),
        )

    def badges(self) -> List[NodeBadge]:
        """Badges for every inventory node."""
        return [self.badge(name) for name in self._inventory.node_names]

    def badge_map(self) -> Dict[str, Dict[str, object]]:
        """Badges keyed by node, JSON-ready (the fan-out ``badges`` room)."""
        return {
            b.node: {
                "alarms": b.alarm_count,
                "severity": b.alarm_severity,
                "riocs": b.rioc_count,
            }
            for b in self.badges()
        }

    def alarms_for(self, node: str) -> List[Alarm]:
        """Alarms recorded against one node."""
        return list(self._alarms.get(node, []))

    def riocs_for(self, node: str) -> List[ReducedIoc]:
        """rIoCs recorded against one node."""
        return list(self._riocs.get(node, []))

    def all_riocs(self) -> List[ReducedIoc]:
        """Every distinct rIoC on the dashboard."""
        seen: Dict[Tuple[str, Optional[str]], ReducedIoc] = {}
        for riocs in self._riocs.values():
            for rioc in riocs:
                seen[(rioc.eioc_uuid, rioc.cve)] = rioc
        return list(seen.values())

    def node_details(self, node: str) -> NodeDetails:
        """The node-details tab content (Fig. 3)."""
        entry = self._inventory.get(node)
        if entry is None:
            raise ValidationError(f"unknown node {node!r}")
        return NodeDetails(
            name=entry.name,
            node_type=entry.node_type,
            ip_addresses=entry.ip_addresses,
            known_remote_ips=tuple(self._remote_ips.get(node, [])),
            operating_system=entry.operating_system,
            networks=entry.networks,
            applications=entry.applications,
        )

    def snapshot(self) -> Dict:
        """JSON-ready snapshot of the whole dashboard."""
        return {
            "topology": {
                "nodes": sorted(self.graph.nodes),
                "edges": sorted((min(u, v), max(u, v)) for u, v in self.graph.edges),
            },
            "badges": [
                {
                    "node": b.node,
                    "alarms": b.alarm_count,
                    "severity": b.alarm_severity,
                    "riocs": b.rioc_count,
                }
                for b in self.badges()
            ],
            "riocs": [r.to_dict() for r in self.all_riocs()],
        }
