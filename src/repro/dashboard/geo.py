"""Spatial visualization model (§II-B: "spatial" data).

OSINT text often names countries/cities; the gazetteer extracts them and
this view aggregates threat activity by world region — "the provenance of
an attack" rendering the paper asks visualizations to communicate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.deltas import StoreRollup
from ..misp import MispEvent, MispStore
from ..nlp import GazetteerExtractor

#: location name (lowercase) -> (region, latitude, longitude).
LOCATION_INDEX: Mapping[str, Tuple[str, float, float]] = {
    "spain": ("Europe", 40.4, -3.7),
    "portugal": ("Europe", 38.7, -9.1),
    "france": ("Europe", 48.9, 2.4),
    "germany": ("Europe", 52.5, 13.4),
    "italy": ("Europe", 41.9, 12.5),
    "united kingdom": ("Europe", 51.5, -0.1),
    "netherlands": ("Europe", 52.4, 4.9),
    "poland": ("Europe", 52.2, 21.0),
    "lisbon": ("Europe", 38.7, -9.1),
    "madrid": ("Europe", 40.4, -3.7),
    "barcelona": ("Europe", 41.4, 2.2),
    "europe": ("Europe", 50.0, 10.0),
    "ukraine": ("Europe", 50.4, 30.5),
    "russia": ("Asia", 55.8, 37.6),
    "china": ("Asia", 39.9, 116.4),
    "japan": ("Asia", 35.7, 139.7),
    "india": ("Asia", 28.6, 77.2),
    "north korea": ("Asia", 39.0, 125.8),
    "iran": ("Asia", 35.7, 51.4),
    "united states": ("North America", 38.9, -77.0),
    "canada": ("North America", 45.4, -75.7),
    "mexico": ("North America", 19.4, -99.1),
    "brazil": ("South America", -15.8, -47.9),
    "argentina": ("South America", -34.6, -58.4),
    "nigeria": ("Africa", 9.1, 7.5),
    "south africa": ("Africa", -25.7, 28.2),
    "egypt": ("Africa", 30.0, 31.2),
    "australia": ("Oceania", -35.3, 149.1),
}

#: ISO country code (as used by galaxy cluster meta) -> location-index key.
COUNTRY_CODE_INDEX: Mapping[str, str] = {
    "RU": "russia", "CN": "china", "KP": "north korea", "IR": "iran",
    "US": "united states", "DE": "germany", "FR": "france", "ES": "spain",
    "PT": "portugal", "UA": "ukraine", "GB": "united kingdom",
    "BR": "brazil", "NG": "nigeria", "AU": "australia", "JP": "japan",
    "IN": "india",
}

REGIONS = ("Europe", "North America", "South America", "Asia", "Africa",
           "Oceania")


@dataclass(frozen=True)
class GeoHit:
    """One located mention: where, and on which event."""

    location: str
    region: str
    latitude: float
    longitude: float
    event_uuid: str


def locate_event(event: MispEvent, gazetteer: GazetteerExtractor,
                 index: Mapping[str, Tuple[str, float, float]]
                 ) -> List[GeoHit]:
    """Extract and map the located mentions of one event's text."""
    text = event.info + " " + " ".join(
        attribute.value for attribute in event.attributes
        if attribute.type == "text")
    found = gazetteer.extract(text).get("location", [])
    hits: List[GeoHit] = []
    for location in found:
        entry = index.get(location)
        if entry is None:
            continue
        region, latitude, longitude = entry
        hits.append(GeoHit(location=location, region=region,
                           latitude=latitude, longitude=longitude,
                           event_uuid=event.uuid))
    return hits


class GeoStoreRollup(StoreRollup):
    """Per-store located-mention index maintained from the change feed.

    Keeps each event's hits separately so updates replace and deletes
    retire that event's mentions — the aggregate always matches what a
    fresh scan of the store would find.
    """

    def __init__(self, store: MispStore, gazetteer: GazetteerExtractor,
                 index: Mapping[str, Tuple[str, float, float]],
                 name: str = "rollup:geo-summary",
                 persistent: bool = False) -> None:
        self._gazetteer = gazetteer
        self._index = index
        self._event_hits: Dict[str, List[GeoHit]] = {}
        #: Hits contributed by the most recent delta (ingest_store return).
        self.last_delta_hits = 0
        super().__init__(store, name, persistent=persistent)

    def apply_delta(self, events: Sequence[MispEvent],
                    deleted: Sequence[str]) -> None:
        self.last_delta_hits = 0
        for uuid in deleted:
            self._event_hits.pop(uuid, None)
        for event in events:
            hits = locate_event(event, self._gazetteer, self._index)
            self.last_delta_hits += len(hits)
            if hits:
                self._event_hits[event.uuid] = hits
            else:
                self._event_hits.pop(event.uuid, None)

    def state_dict(self) -> Dict[str, Any]:
        return {"events": {
            uuid: [[h.location, h.region, h.latitude, h.longitude]
                   for h in hits]
            for uuid, hits in self._event_hits.items()}}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._event_hits = {
            uuid: [GeoHit(location=row[0], region=row[1], latitude=row[2],
                          longitude=row[3], event_uuid=uuid) for row in rows]
            for uuid, rows in state.get("events", {}).items()}

    @property
    def hits(self) -> List[GeoHit]:
        return [hit for hits in self._event_hits.values() for hit in hits]


class GeoSummaryView:
    """Aggregates located threat mentions by region.

    Manually-ingested events (:meth:`ingest_event` /
    :meth:`ingest_attribution`) accumulate append-only, as before.
    Store-backed aggregation is an incremental rollup per store: repeated
    :meth:`ingest_store` calls consume only the change feed instead of
    re-scanning (and no longer double-count what they already saw).
    """

    def __init__(self, gazetteer: Optional[GazetteerExtractor] = None,
                 index: Mapping[str, Tuple[str, float, float]] = LOCATION_INDEX
                 ) -> None:
        self._gazetteer = gazetteer or GazetteerExtractor()
        self._index = dict(index)
        self._hits: List[GeoHit] = []
        self._store_rollups: Dict[int, GeoStoreRollup] = {}

    def ingest_event(self, event: MispEvent) -> List[GeoHit]:
        """Extract locations from one event's text; returns new hits."""
        new_hits = locate_event(event, self._gazetteer, self._index)
        self._hits.extend(new_hits)
        return new_hits

    def store_rollup(self, store: MispStore,
                     name: str = "rollup:geo-summary",
                     persistent: bool = False) -> GeoStoreRollup:
        """The (lazily created) incremental rollup tracking one store."""
        key = id(store)
        rollup = self._store_rollups.get(key)
        if rollup is None:
            rollup = GeoStoreRollup(store, self._gazetteer, self._index,
                                    name=name, persistent=persistent)
            self._store_rollups[key] = rollup
        return rollup

    def ingest_store(self, store: MispStore) -> int:
        """Fold a store's changes in; returns newly located mentions."""
        rollup = self.store_rollup(store)
        if rollup.refresh() == 0:
            return 0
        return rollup.last_delta_hits

    def ingest_attribution(self, event: MispEvent) -> List[GeoHit]:
        """Place an event by its galaxy clusters' ``country`` metadata.

        Events tagged with a threat-actor cluster (``misp-galaxy:...``)
        whose cluster declares a country are mapped onto that country —
        "the provenance of an attack" view even when the event text names
        no location itself.
        """
        from ..misp.galaxy import BUILTIN_GALAXIES, clusters_of

        new_hits: List[GeoHit] = []
        for value in clusters_of(event):
            cluster = None
            for galaxy in BUILTIN_GALAXIES:
                cluster = galaxy.find(value)
                if cluster is not None:
                    break
            if cluster is None:
                continue
            country_code = cluster.meta.get("country")
            location = COUNTRY_CODE_INDEX.get(country_code or "")
            entry = self._index.get(location or "")
            if entry is None:
                continue
            region, latitude, longitude = entry
            hit = GeoHit(location=location, region=region,
                         latitude=latitude, longitude=longitude,
                         event_uuid=event.uuid)
            self._hits.append(hit)
            new_hits.append(hit)
        return new_hits

    @property
    def hits(self) -> List[GeoHit]:
        """Every located mention recorded so far (manual + store rollups)."""
        combined = list(self._hits)
        for rollup in self._store_rollups.values():
            combined.extend(rollup.hits)
        return combined

    @staticmethod
    def _ranked(counter: Counter) -> Dict[str, int]:
        # Deterministic regardless of ingest order: by count, then name.
        return {name: count for name, count in sorted(
            counter.items(), key=lambda pair: (-pair[1], pair[0]))}

    def by_region(self) -> Dict[str, int]:
        """Mention counts grouped by world region."""
        return self._ranked(Counter(hit.region for hit in self.hits))

    def by_location(self) -> Dict[str, int]:
        """Mention counts grouped by location name."""
        return self._ranked(Counter(hit.location for hit in self.hits))

    def render(self, width: int = 30) -> str:
        """Render this view as printable text."""
        regions = self.by_region()
        if not regions:
            return "Geo summary: no located mentions"
        peak = max(regions.values())
        lines = ["Threat mentions by region"]
        for region in REGIONS:
            count = regions.get(region, 0)
            if count == 0:
                continue
            bar = "#" * max(1, round(count / peak * width))
            lines.append(f"  {region:<15} {bar} {count}")
        top = sorted(self.by_location().items(), key=lambda p: -p[1])[:5]
        if top:
            lines.append("  top locations: " +
                         ", ".join(f"{name} ({count})" for name, count in top))
        return "\n".join(lines)
