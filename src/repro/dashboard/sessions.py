"""Analyst-session visual summary (§II-B, fourth bullet).

"Develop a visual summary of user activities that reveals common/abnormal
patterns in a large set of user sessions, compares multiple sessions of
interest, and investigates in depth of individual sessions."

An analyst session is a sequence of dashboard actions; the summarizer
mines action-bigram frequencies across all sessions, scores each session by
how *typical* its transitions are, and renders the comparison.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..clock import Clock, SimulatedClock
from ..errors import ValidationError


class Action:
    """Dashboard actions an analyst session can contain."""

    VIEW_TOPOLOGY = "view_topology"
    VIEW_NODE = "view_node"
    VIEW_ISSUE = "view_issue"
    ACK_ALARM = "ack_alarm"
    SEARCH = "search"
    EXPORT = "export"
    SHARE = "share"

    ALL = (VIEW_TOPOLOGY, VIEW_NODE, VIEW_ISSUE, ACK_ALARM, SEARCH,
           EXPORT, SHARE)


@dataclass(frozen=True)
class SessionEvent:
    """One recorded dashboard action."""
    action: str
    target: str
    timestamp: _dt.datetime


@dataclass
class AnalystSession:
    """One analyst's interaction trace."""

    analyst: str
    session_id: str
    events: List[SessionEvent] = field(default_factory=list)

    def record(self, action: str, target: str,
               timestamp: _dt.datetime) -> None:
        """Append one action to the session."""
        if action not in Action.ALL:
            raise ValidationError(f"unknown dashboard action {action!r}")
        self.events.append(SessionEvent(action, target, timestamp))

    def actions(self) -> List[str]:
        """The session's action names, in order."""
        return [event.action for event in self.events]

    def bigrams(self) -> List[Tuple[str, str]]:
        """Consecutive action pairs of the session."""
        actions = self.actions()
        return list(zip(actions, actions[1:]))

    def duration(self) -> _dt.timedelta:
        """Wall-clock span between first and last action."""
        if len(self.events) < 2:
            return _dt.timedelta(0)
        return self.events[-1].timestamp - self.events[0].timestamp


class SessionRecorder:
    """Collects sessions and provides the summary analytics."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SimulatedClock()
        self._sessions: Dict[str, AnalystSession] = {}
        self._next_id = 0

    def start_session(self, analyst: str) -> AnalystSession:
        """Open a new analyst session."""
        self._next_id += 1
        session = AnalystSession(analyst=analyst,
                                 session_id=f"session-{self._next_id}")
        self._sessions[session.session_id] = session
        return session

    def record(self, session: AnalystSession, action: str,
               target: str = "") -> None:
        """Append one action to the session."""
        session.record(action, target, self._clock.now())

    @property
    def sessions(self) -> List[AnalystSession]:
        """Every recorded session."""
        return list(self._sessions.values())

    # -- pattern mining ------------------------------------------------------

    def common_bigrams(self, top: int = 5) -> List[Tuple[Tuple[str, str], int]]:
        """The most frequent action transitions across all sessions."""
        counter: Counter = Counter()
        for session in self._sessions.values():
            counter.update(session.bigrams())
        return counter.most_common(top)

    def typicality(self, session: AnalystSession) -> float:
        """Mean *support* of the session's transitions, in [0, 1].

        Support of a transition = the fraction of OTHER sessions that also
        contain it (leave-one-out, so a session cannot vouch for its own
        pattern).  1.0 = every other analyst follows every one of this
        session's transitions; 0.0 = nobody else does.
        """
        others = [other for other in self._sessions.values()
                  if other.session_id != session.session_id]
        bigrams = session.bigrams()
        if not others or not bigrams:
            return 1.0
        other_sets = [set(other.bigrams()) for other in others]
        support = 0.0
        for bigram in bigrams:
            support += sum(1 for s in other_sets if bigram in s) / len(others)
        return support / len(bigrams)

    def abnormal_sessions(self, threshold: float = 0.3) -> List[AnalystSession]:
        """Sessions whose transition patterns are rare in the corpus."""
        return [session for session in self._sessions.values()
                if session.bigrams()
                and self.typicality(session) < threshold]

    # -- rendering ------------------------------------------------------------

    def render_summary(self) -> str:
        """Render the cross-session pattern summary."""
        lines = [f"Analyst sessions: {len(self._sessions)}"]
        for (a, b), count in self.common_bigrams():
            lines.append(f"  common flow: {a} -> {b}  (x{count})")
        abnormal = self.abnormal_sessions()
        for session in abnormal:
            lines.append(
                f"  ABNORMAL {session.session_id} ({session.analyst}): "
                f"typicality {self.typicality(session):.2f}, "
                f"{len(session.events)} actions")
        if not abnormal:
            lines.append("  no abnormal sessions")
        return "\n".join(lines)

    def render_session(self, session: AnalystSession) -> str:
        """In-depth view of one session (the paper's third requirement)."""
        lines = [
            f"Session {session.session_id} — analyst {session.analyst}",
            f"  actions: {len(session.events)}  "
            f"duration: {session.duration()}  "
            f"typicality: {self.typicality(session):.2f}",
        ]
        for event in session.events:
            lines.append(f"  {event.timestamp.strftime('%H:%M:%S')}  "
                         f"{event.action:<14} {event.target}")
        return "\n".join(lines)

    def compare(self, first: AnalystSession,
                second: AnalystSession) -> str:
        """Side-by-side comparison of two sessions of interest."""
        shared = set(first.bigrams()) & set(second.bigrams())
        lines = [
            f"Comparing {first.session_id} vs {second.session_id}",
            f"  actions:    {len(first.events)} vs {len(second.events)}",
            f"  typicality: {self.typicality(first):.2f} vs "
            f"{self.typicality(second):.2f}",
            f"  shared transitions: {len(shared)}",
        ]
        for a, b in sorted(shared):
            lines.append(f"    {a} -> {b}")
        return "\n".join(lines)
