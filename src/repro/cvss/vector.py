"""CVSS v3.0/v3.1 base-score computation from first principles.

The vulnerability heuristic's ``cve`` feature scores an IoC by its CVSS
severity band (Table IV: "CVE with low CVSS (2) ... CVE with critical
CVSS (5)"), so we need a real scorer.  The formulas below are transcribed
from the CVSS v3.0 specification (section 8.1); v3.1 differs only in the
roundup function's float handling, which we implement the v3.1 way since it
is strictly more robust and agrees with v3.0 on all published vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import ParseError, ValidationError

# Metric value weights (CVSS v3.0 spec, table 8).
_AV = {"N": 0.85, "A": 0.62, "L": 0.55, "P": 0.2}
_AC = {"L": 0.77, "H": 0.44}
# PR weights depend on Scope.
_PR_UNCHANGED = {"N": 0.85, "L": 0.62, "H": 0.27}
_PR_CHANGED = {"N": 0.85, "L": 0.68, "H": 0.5}
_UI = {"N": 0.85, "R": 0.62}
_CIA = {"H": 0.56, "L": 0.22, "N": 0.0}

_REQUIRED_METRICS = ("AV", "AC", "PR", "UI", "S", "C", "I", "A")

# Temporal metric weights (spec table 8; X = not defined = 1.0).
_EXPLOIT_MATURITY = {"X": 1.0, "U": 0.91, "P": 0.94, "F": 0.97, "H": 1.0}
_REMEDIATION_LEVEL = {"X": 1.0, "O": 0.95, "T": 0.96, "W": 0.97, "U": 1.0}
_REPORT_CONFIDENCE = {"X": 1.0, "U": 0.92, "R": 0.96, "C": 1.0}
# Environmental security requirements.
_REQUIREMENT = {"X": 1.0, "L": 0.5, "M": 1.0, "H": 1.5}

_ALLOWED: Dict[str, Tuple[str, ...]] = {
    "AV": ("N", "A", "L", "P"),
    "AC": ("L", "H"),
    "PR": ("N", "L", "H"),
    "UI": ("N", "R"),
    "S": ("U", "C"),
    "C": ("H", "L", "N"),
    "I": ("H", "L", "N"),
    "A": ("H", "L", "N"),
    # temporal
    "E": ("X", "U", "P", "F", "H"),
    "RL": ("X", "O", "T", "W", "U"),
    "RC": ("X", "U", "R", "C"),
    # environmental requirements + modified base metrics
    "CR": ("X", "L", "M", "H"),
    "IR": ("X", "L", "M", "H"),
    "AR": ("X", "L", "M", "H"),
    "MAV": ("X", "N", "A", "L", "P"),
    "MAC": ("X", "L", "H"),
    "MPR": ("X", "N", "L", "H"),
    "MUI": ("X", "N", "R"),
    "MS": ("X", "U", "C"),
    "MC": ("X", "H", "L", "N"),
    "MI": ("X", "H", "L", "N"),
    "MA": ("X", "H", "L", "N"),
}

#: Severity bands from the CVSS v3.0 spec, section 5 ("Qualitative Severity
#: Rating Scale").
SEVERITY_BANDS = (
    ("none", 0.0, 0.0),
    ("low", 0.1, 3.9),
    ("medium", 4.0, 6.9),
    ("high", 7.0, 8.9),
    ("critical", 9.0, 10.0),
)


def severity(score: float) -> str:
    """Map a base score onto its qualitative severity rating."""
    if score < 0.0 or score > 10.0:
        raise ValidationError(f"CVSS score out of range: {score}")
    for name, low, high in SEVERITY_BANDS:
        if low <= score <= high:
            return name
    # Scores between bands (e.g. 3.95) cannot occur for rounded scores, but
    # guard against unrounded input by snapping upward.
    for name, low, high in SEVERITY_BANDS:
        if score <= high:
            return name
    return "critical"


def _roundup(value: float) -> float:
    """CVSS v3.1 Roundup: smallest number with one decimal >= value."""
    int_input = round(value * 100_000)
    if int_input % 10_000 == 0:
        return int_input / 100_000.0
    return (math.floor(int_input / 10_000) + 1) / 10.0


@dataclass(frozen=True)
class CvssVector:
    """A parsed CVSS v3.x base vector with its computed score."""

    metrics: Mapping[str, str]
    version: str

    @classmethod
    def parse(cls, text: str) -> "CvssVector":
        """Parse ``CVSS:3.0/AV:N/AC:L/...`` (prefix optional)."""
        if not text or not text.strip():
            raise ParseError("empty CVSS vector")
        parts = text.strip().split("/")
        version = "3.0"
        if parts[0].upper().startswith("CVSS:"):
            version = parts[0].split(":", 1)[1]
            if version not in ("3.0", "3.1"):
                raise ParseError(f"unsupported CVSS version {version!r}")
            parts = parts[1:]
        metrics: Dict[str, str] = {}
        for part in parts:
            if ":" not in part:
                raise ParseError(f"malformed CVSS metric {part!r}")
            key, _, value = part.partition(":")
            key = key.upper()
            value = value.upper()
            if key in metrics:
                raise ParseError(f"duplicate CVSS metric {key!r}")
            if key in _ALLOWED and value not in _ALLOWED[key]:
                raise ParseError(f"invalid value {value!r} for CVSS metric {key}")
            metrics[key] = value
        missing = [m for m in _REQUIRED_METRICS if m not in metrics]
        if missing:
            raise ParseError(f"CVSS vector missing metrics: {', '.join(missing)}")
        return cls(metrics=metrics, version=version)

    @property
    def scope_changed(self) -> bool:
        """Whether the Scope metric is C (changed)."""
        return self.metrics["S"] == "C"

    def impact_subscore(self) -> float:
        """ISC as defined in spec section 8.1."""
        isc_base = 1.0 - (
            (1.0 - _CIA[self.metrics["C"]])
            * (1.0 - _CIA[self.metrics["I"]])
            * (1.0 - _CIA[self.metrics["A"]])
        )
        if self.scope_changed:
            return 7.52 * (isc_base - 0.029) - 3.25 * (isc_base - 0.02) ** 15
        return 6.42 * isc_base

    def exploitability_subscore(self) -> float:
        """The CVSS exploitability sub-score (spec 8.1)."""
        pr_table = _PR_CHANGED if self.scope_changed else _PR_UNCHANGED
        return (
            8.22
            * _AV[self.metrics["AV"]]
            * _AC[self.metrics["AC"]]
            * pr_table[self.metrics["PR"]]
            * _UI[self.metrics["UI"]]
        )

    def base_score(self) -> float:
        """The CVSS base score, rounded up to one decimal."""
        isc = self.impact_subscore()
        if isc <= 0:
            return 0.0
        esc = self.exploitability_subscore()
        if self.scope_changed:
            return _roundup(min(1.08 * (isc + esc), 10.0))
        return _roundup(min(isc + esc, 10.0))

    def severity(self) -> str:
        """The qualitative severity band."""
        return severity(self.base_score())

    # -- temporal (spec section 8.2) -----------------------------------------

    def _temporal_factor(self) -> float:
        return (
            _EXPLOIT_MATURITY[self.metrics.get("E", "X")]
            * _REMEDIATION_LEVEL[self.metrics.get("RL", "X")]
            * _REPORT_CONFIDENCE[self.metrics.get("RC", "X")]
        )

    def temporal_score(self) -> float:
        """TemporalScore = Roundup(BaseScore * E * RL * RC)."""
        return _roundup(self.base_score() * self._temporal_factor())

    # -- environmental (spec section 8.3) ---------------------------------------

    def _modified(self, name: str) -> str:
        """Modified metric value, falling back to the base metric."""
        value = self.metrics.get("M" + name, "X")
        if value == "X":
            return self.metrics[name]
        return value

    def environmental_score(self) -> float:
        """The environmental score with modified metrics + requirements.

        With every optional metric left at X this equals the temporal
        score, which itself equals the base score when E/RL/RC are X.
        """
        miss_base = min(
            1.0 - (
                (1.0 - _CIA[self._modified("C")] * _REQUIREMENT[self.metrics.get("CR", "X")])
                * (1.0 - _CIA[self._modified("I")] * _REQUIREMENT[self.metrics.get("IR", "X")])
                * (1.0 - _CIA[self._modified("A")] * _REQUIREMENT[self.metrics.get("AR", "X")])
            ),
            0.915,
        )
        scope_changed = self._modified("S") == "C"
        if scope_changed:
            misc = 7.52 * (miss_base - 0.029) - 3.25 * (miss_base - 0.02) ** 15
        else:
            misc = 6.42 * miss_base
        if misc <= 0:
            return 0.0
        pr_table = _PR_CHANGED if scope_changed else _PR_UNCHANGED
        mesc = (
            8.22
            * _AV[self._modified("AV")]
            * _AC[self._modified("AC")]
            * pr_table[self._modified("PR")]
            * _UI[self._modified("UI")]
        )
        if scope_changed:
            inner = _roundup(min(1.08 * (misc + mesc), 10.0))
        else:
            inner = _roundup(min(misc + mesc, 10.0))
        return _roundup(inner * self._temporal_factor())

    def to_string(self) -> str:
        """Render the vector in its canonical string form."""
        optional = [k for k in self.metrics
                    if k not in _REQUIRED_METRICS and self.metrics[k] != "X"]
        body = "/".join(f"{k}:{self.metrics[k]}"
                        for k in list(_REQUIRED_METRICS) + optional)
        return f"CVSS:{self.version}/{body}"

    def __str__(self) -> str:
        return self.to_string()


def score(vector_text: str) -> float:
    """Convenience: parse and score in one call."""
    return CvssVector.parse(vector_text).base_score()
