"""CVSS v3.x scoring and CVE database substrate."""

from .cve import CVE_ID_RE, CveDatabase, CveRecord, KNOWN_CVES, generate_synthetic_cves
from .vector import SEVERITY_BANDS, CvssVector, score, severity

__all__ = [
    "CVE_ID_RE",
    "CveDatabase",
    "CveRecord",
    "KNOWN_CVES",
    "generate_synthetic_cves",
    "SEVERITY_BANDS",
    "CvssVector",
    "score",
    "severity",
]
