"""CVE records and a synthetic NVD-style database.

The paper's use case keys on CVE-2017-9805 (Apache Struts RCE, CVSS 8.1).
This module carries a small transcription of real, well-known CVE entries —
enough for the examples and tables — plus a generator for synthetic entries
that the scaling benchmarks use.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..clock import parse_timestamp
from ..errors import ValidationError
from .vector import CvssVector, severity

CVE_ID_RE = re.compile(r"^CVE-\d{4}-\d{4,}$")


@dataclass(frozen=True)
class CveRecord:
    """One CVE entry: id, summary, affected products, CVSS vector."""

    cve_id: str
    summary: str
    published: str
    cvss_vector: Optional[str] = None
    affected_products: Tuple[str, ...] = ()
    references: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not CVE_ID_RE.match(self.cve_id):
            raise ValidationError(f"malformed CVE id: {self.cve_id!r}")
        parse_timestamp(self.published)  # validate eagerly

    def base_score(self) -> Optional[float]:
        """The CVSS base score, or None without a vector."""
        if self.cvss_vector is None:
            return None
        return CvssVector.parse(self.cvss_vector).base_score()

    def severity(self) -> Optional[str]:
        """The qualitative severity band."""
        base = self.base_score()
        return None if base is None else severity(base)


#: Transcribed well-known CVEs (vectors from NVD).  CVE-2017-9805 is the
#: paper's use-case vulnerability; its NVD v3.0 vector scores exactly 8.1.
KNOWN_CVES: Tuple[CveRecord, ...] = (
    CveRecord(
        cve_id="CVE-2017-9805",
        summary=(
            "The REST Plugin in Apache Struts 2.1.2 through 2.3.33 and 2.5.x "
            "before 2.5.13 uses an XStreamHandler with an instance of XStream "
            "for deserialization without any type filtering, which can lead "
            "to Remote Code Execution when deserializing XML payloads."
        ),
        published="2017-09-13T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
        affected_products=("apache struts", "apache"),
        references=("CAPEC-586", "https://struts.apache.org/docs/s2-052.html"),
    ),
    CveRecord(
        cve_id="CVE-2017-5638",
        summary=(
            "The Jakarta Multipart parser in Apache Struts 2 has incorrect "
            "exception handling and error-message generation, allowing remote "
            "attackers to execute arbitrary commands via a crafted "
            "Content-Type header (S2-045)."
        ),
        published="2017-03-10T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
        affected_products=("apache struts", "apache"),
        references=("https://struts.apache.org/docs/s2-045.html",),
    ),
    CveRecord(
        cve_id="CVE-2014-0160",
        summary=(
            "The TLS/DTLS heartbeat extension in OpenSSL 1.0.1 before 1.0.1g "
            "allows remote attackers to read process memory (Heartbleed)."
        ),
        published="2014-04-07T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N",
        affected_products=("openssl",),
        references=("https://heartbleed.com/",),
    ),
    CveRecord(
        cve_id="CVE-2017-0144",
        summary=(
            "The SMBv1 server in Microsoft Windows allows remote attackers to "
            "execute arbitrary code via crafted packets (EternalBlue)."
        ),
        published="2017-03-16T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
        affected_products=("windows", "smb"),
        references=("MS17-010",),
    ),
    CveRecord(
        cve_id="CVE-2016-10033",
        summary=(
            "The mail transport in PHPMailer before 5.2.18 allows remote "
            "attackers to execute arbitrary code via a crafted Sender "
            "property."
        ),
        published="2016-12-30T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
        affected_products=("phpmailer", "php"),
        references=(),
    ),
    CveRecord(
        cve_id="CVE-2018-7600",
        summary=(
            "Drupal before 7.58, 8.x before 8.3.9 allows remote attackers to "
            "execute arbitrary code because of an issue affecting multiple "
            "subsystems with default configurations (Drupalgeddon2)."
        ),
        published="2018-03-28T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
        affected_products=("drupal", "php"),
        references=("SA-CORE-2018-002",),
    ),
    CveRecord(
        cve_id="CVE-2015-1635",
        summary=(
            "HTTP.sys in Microsoft Windows allows remote attackers to execute "
            "arbitrary code via crafted HTTP requests."
        ),
        published="2015-04-14T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
        affected_products=("windows", "iis"),
        references=("MS15-034",),
    ),
    CveRecord(
        cve_id="CVE-2016-5195",
        summary=(
            "Race condition in mm/gup.c in the Linux kernel allows local "
            "users to gain privileges (Dirty COW)."
        ),
        published="2016-11-10T00:00:00Z",
        cvss_vector="CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
        affected_products=("linux", "ubuntu", "debian"),
        references=(),
    ),
)


class CveDatabase:
    """In-memory NVD stand-in: lookup by id, search by product, add records."""

    def __init__(self, records: Iterable[CveRecord] = KNOWN_CVES) -> None:
        self._records: Dict[str, CveRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: CveRecord) -> None:
        """Add one entry."""
        self._records[record.cve_id] = record

    def get(self, cve_id: str) -> Optional[CveRecord]:
        """Look up an entry by key; None when absent."""
        return self._records.get(cve_id.upper())

    def __contains__(self, cve_id: str) -> bool:
        return cve_id.upper() in self._records

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[CveRecord]:
        """Every stored entry."""
        return list(self._records.values())

    def search_product(self, product: str) -> List[CveRecord]:
        """All CVEs affecting a product (case-insensitive substring match)."""
        needle = product.lower()
        return [
            record for record in self._records.values()
            if any(needle in p or p in needle for p in record.affected_products)
        ]


_SYNTH_PRODUCTS = (
    "apache", "nginx", "openssl", "linux", "windows", "mysql", "postgresql",
    "wordpress", "drupal", "gitlab", "owncloud", "php", "java", "docker",
)

_SYNTH_FLAWS = (
    "buffer overflow", "SQL injection", "cross-site scripting",
    "deserialization of untrusted data", "path traversal",
    "improper authentication", "use-after-free", "integer overflow",
    "command injection", "XML external entity processing",
)

_SYNTH_VECTORS = (
    "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",   # critical 9.8
    "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",   # high 8.1
    "CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:N",   # medium 5.4
    "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N",   # low 2.0ish
    None,                                               # no CVSS assigned
)


def generate_synthetic_cves(count: int, seed: int = 7,
                            year_range: Tuple[int, int] = (2014, 2018)) -> List[CveRecord]:
    """Deterministically fabricate CVE records for load benchmarks."""
    if count < 0:
        raise ValidationError("count must be non-negative")
    rng = random.Random(seed)
    records: List[CveRecord] = []
    for index in range(count):
        year = rng.randint(*year_range)
        product = rng.choice(_SYNTH_PRODUCTS)
        flaw = rng.choice(_SYNTH_FLAWS)
        vector = rng.choice(_SYNTH_VECTORS)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        records.append(CveRecord(
            cve_id=f"CVE-{year}-{10_000 + index}",
            summary=f"A {flaw} issue in {product} allows attackers to compromise the host.",
            published=f"{year}-{month:02d}-{day:02d}T00:00:00Z",
            cvss_vector=vector,
            affected_products=(product,),
            references=(f"https://vuln.example/{year}/{10_000 + index}",),
        ))
    return records
