"""Infrastructure Data Collector (§III-A2).

Gathers "information related to the monitored infrastructure that could lead
to internal indicators of compromise (e.g., hashes, signatures, IPs, domains,
URLs)" plus static context (installed applications, operating systems), and
feeds the operational module's MISP instance with *infrastructure events*
that the heuristic analysis later contrasts against OSINT data.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..clock import Clock, SimulatedClock
from ..ids import content_uuid
from ..misp import Distribution, MispAttribute, MispEvent, MispInstance
from .alarms import Alarm, AlarmManager
from .inventory import Inventory
from .sensors import SensorNetwork, TelemetryObservation

#: Tag that marks events originating from the monitored infrastructure.
INFRASTRUCTURE_TAG = "caop:source=\"infrastructure\""


@dataclass(frozen=True)
class InfrastructureSnapshot:
    """The collector's view of the infrastructure at one instant."""

    taken_at: _dt.datetime
    installed_software: Dict[str, Tuple[str, ...]]
    seen_ips: Tuple[str, ...]
    alarms: Tuple[Alarm, ...]

    def software_terms(self) -> Set[str]:
        """All matchable software terms in the snapshot."""
        out: Set[str] = set()
        for terms in self.installed_software.values():
            out |= set(terms)
        return out


class InfrastructureDataCollector:
    """Collects internal IoCs + context and ships them to the MISP instance."""

    def __init__(self, inventory: Inventory, sensors: SensorNetwork,
                 misp: Optional[MispInstance] = None,
                 clock: Optional[Clock] = None) -> None:
        self._inventory = inventory
        self._sensors = sensors
        self._misp = misp
        self._clock = clock or SimulatedClock()
        self._shipped_values: Set[Tuple[str, str]] = set()

    @property
    def inventory(self) -> Inventory:
        """The monitored infrastructure inventory."""
        return self._inventory

    @property
    def alarm_manager(self) -> AlarmManager:
        """The live alarm manager."""
        return self._sensors.alarm_manager

    def snapshot(self) -> InfrastructureSnapshot:
        """Static + dynamic view: software inventory, seen IPs, live alarms."""
        installed = {
            node.name: tuple(sorted(node.software_terms()))
            for node in self._inventory.nodes
        }
        seen_ips = tuple(sorted({
            observation.observable["value"]
            for observation in self._sensors.telemetry
            if observation.observable.get("type") == "ipv4-addr"
        }))
        return InfrastructureSnapshot(
            taken_at=self._clock.now(),
            installed_software=installed,
            seen_ips=seen_ips,
            alarms=tuple(self._sensors.alarm_manager.all()),
        )

    def collect_internal_iocs(self) -> List[MispAttribute]:
        """Internal IoCs derived from telemetry: attacking IPs seen by NIDS."""
        attributes: List[MispAttribute] = []
        for alarm in self._sensors.alarm_manager.all():
            if not alarm.ip_src:
                continue
            key = ("ip-src", alarm.ip_src)
            if key in self._shipped_values:
                continue
            self._shipped_values.add(key)
            attributes.append(MispAttribute(
                type="ip-src",
                value=alarm.ip_src,
                comment=f"observed by {alarm.node}: {alarm.signature}",
                timestamp=alarm.timestamp,
            ))
        return attributes

    def ship_to_misp(self) -> Optional[MispEvent]:
        """Package fresh internal IoCs as one infrastructure MISP event.

        Infrastructure events are "simply stored internally and used later
        during the heuristic analysis" (§IV-A): distribution is
        organisation-only and the zmq feed is *not* triggered.
        """
        if self._misp is None:
            return None
        attributes = self.collect_internal_iocs()
        if not attributes:
            return None
        event = MispEvent(
            info="Infrastructure telemetry: internal indicators",
            org=self._misp.org,
            distribution=Distribution.ORGANISATION_ONLY,
            timestamp=self._clock.now(),
        )
        for attribute in attributes:
            event.add_attribute(attribute)
        # Content-derived ids keep infrastructure events identical across
        # runs (and across fetch-pool sizes), which the chaos-recovery
        # parity checks rely on.
        event.uuid = content_uuid(
            "infra-event", event.timestamp.isoformat(),
            *sorted(f"{a.type}:{a.value}:{a.comment}" for a in attributes))
        for index, attribute in enumerate(attributes):
            attribute.uuid = content_uuid(
                "infra-attribute", event.uuid, str(index))
        event.add_tag(INFRASTRUCTURE_TAG)
        # Internal telemetry is recipients-only: it must never cross the
        # sharing gateway even if an operator mis-sets its distribution.
        event.add_tag("tlp:red")
        self._misp.add_event(event, publish_feed=False)
        return event
