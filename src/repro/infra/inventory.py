"""Infrastructure inventory: nodes, applications, networks.

"A system inventory containing the nodes, and their installed applications
is required to perform the match" (§III-C1).  The rIoC generator checks
every eIoC against this inventory; *common keywords* (Table III's
"All Nodes: linux" row) match every node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import ValidationError


class NodeType:
    """Node type constants (Server / Workstation)."""
    SERVER = "Server"
    WORKSTATION = "Workstation"

    ALL = (SERVER, WORKSTATION)


class NetworkKind:
    """Network kind constants (LAN / WAN)."""
    LAN = "LAN"
    WAN = "WAN"

    ALL = (LAN, WAN)


@dataclass
class Node:
    """One monitored host with its installed applications."""

    name: str
    node_type: str = NodeType.SERVER
    ip_addresses: Tuple[str, ...] = ()
    operating_system: str = ""
    networks: Tuple[str, ...] = (NetworkKind.LAN,)
    applications: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("node name must not be empty")
        if self.node_type not in NodeType.ALL:
            raise ValidationError(f"unknown node type {self.node_type!r}")
        for network in self.networks:
            if network not in NetworkKind.ALL:
                raise ValidationError(f"unknown network kind {network!r}")
        self.applications = tuple(app.lower() for app in self.applications)
        self.operating_system = self.operating_system.lower()

    def runs(self, term: str) -> bool:
        """Does this node run the given application/OS (exact, lowercase)?"""
        needle = term.lower()
        return needle in self.applications or needle == self.operating_system

    def software_terms(self) -> FrozenSet[str]:
        """All matchable software terms on this node."""
        terms = set(self.applications)
        if self.operating_system:
            terms.add(self.operating_system)
        return frozenset(terms)


@dataclass(frozen=True)
class InventoryMatch:
    """Result of matching a term against the inventory."""

    term: str
    nodes: Tuple[str, ...]
    via_common_keyword: bool = False

    def __bool__(self) -> bool:
        return bool(self.nodes)


class Inventory:
    """The set of monitored nodes plus common keywords shared by all."""

    def __init__(self, nodes: Optional[Iterable[Node]] = None,
                 common_keywords: Iterable[str] = ()) -> None:
        self._nodes: Dict[str, Node] = {}
        self.common_keywords: Set[str] = {k.lower() for k in common_keywords}
        for node in nodes or ():
            self.add_node(node)

    def add_node(self, node: Node) -> None:
        """Add a node; duplicate names are rejected."""
        if node.name in self._nodes:
            raise ValidationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def add_common_keyword(self, keyword: str) -> None:
        """Add a keyword that matches every node."""
        self.common_keywords.add(keyword.lower())

    def get(self, name: str) -> Optional[Node]:
        """Look up an entry by key; None when absent."""
        return self._nodes.get(name)

    @property
    def nodes(self) -> List[Node]:
        """Every node in the inventory."""
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        """The node names, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def match(self, term: str) -> InventoryMatch:
        """Match one software term against the inventory (§IV rule).

        - exact application/OS match -> the specific nodes;
        - common keyword (e.g. ``linux``) -> *all* nodes;
        - no match -> empty.
        """
        needle = term.lower().strip()
        if not needle:
            return InventoryMatch(term=term, nodes=())
        if needle in self.common_keywords:
            return InventoryMatch(
                term=term, nodes=tuple(self._nodes), via_common_keyword=True)
        matched = tuple(
            name for name, node in self._nodes.items() if node.runs(needle))
        return InventoryMatch(term=term, nodes=matched)

    def match_any(self, terms: Iterable[str]) -> Dict[str, InventoryMatch]:
        """Match several terms; only hits are returned."""
        out: Dict[str, InventoryMatch] = {}
        for term in terms:
            result = self.match(term)
            if result:
                out[term] = result
        return out

    def all_software_terms(self) -> Set[str]:
        """Every matchable term across nodes and keywords."""
        terms: Set[str] = set(self.common_keywords)
        for node in self._nodes.values():
            terms |= node.software_terms()
        return terms

    def find_by_ip(self, ip: str) -> Optional[Node]:
        """The node owning an IP address, if any."""
        for node in self._nodes.values():
            if ip in node.ip_addresses:
                return node
        return None


def paper_inventory() -> Inventory:
    """The use-case infrastructure of Table III, verbatim."""
    return Inventory(
        nodes=[
            Node(
                name="Node 1", node_type=NodeType.SERVER,
                ip_addresses=("10.0.0.11",), operating_system="ubuntu",
                applications=("owncloud", "ossec", "snort", "suricata",
                              "nids", "hids"),
            ),
            Node(
                name="Node 2", node_type=NodeType.SERVER,
                ip_addresses=("10.0.0.12",), operating_system="ubuntu",
                applications=("gitlab", "ossec", "snort", "suricata",
                              "nids", "hids"),
            ),
            Node(
                name="Node 3", node_type=NodeType.SERVER,
                ip_addresses=("10.0.0.13",), operating_system="ubuntu",
                applications=("snort", "suricata", "nids", "php"),
            ),
            Node(
                name="Node 4", node_type=NodeType.SERVER,
                ip_addresses=("10.0.0.14",), operating_system="debian",
                applications=("apache", "apache storm", "apache zookeeper",
                              "server"),
            ),
        ],
        common_keywords=("linux",),
    )
