"""Infrastructure substrate: inventory, alarms, sensors, data collector."""

from .alarms import Alarm, AlarmManager, Severity
from .collector import (
    INFRASTRUCTURE_TAG,
    InfrastructureDataCollector,
    InfrastructureSnapshot,
)
from .inventory import (
    Inventory,
    InventoryMatch,
    NetworkKind,
    Node,
    NodeType,
    paper_inventory,
)
from .sensors import HidsSensor, NidsSensor, Sensor, SensorNetwork, TelemetryObservation

__all__ = [
    "Alarm",
    "AlarmManager",
    "Severity",
    "INFRASTRUCTURE_TAG",
    "InfrastructureDataCollector",
    "InfrastructureSnapshot",
    "Inventory",
    "InventoryMatch",
    "NetworkKind",
    "Node",
    "NodeType",
    "paper_inventory",
    "HidsSensor",
    "NidsSensor",
    "Sensor",
    "SensorNetwork",
    "TelemetryObservation",
]
