"""Deterministic sensor simulators (NIDS/HIDS).

The use-case nodes run snort/suricata (NIDS) and ossec (HIDS) — Table III.
These simulators replay plausible alert streams against the inventory: each
tick produces zero or more :class:`Alarm` values and raw telemetry
observations the SIEM connector can match STIX patterns against.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..clock import Clock, SimulatedClock
from ..errors import ValidationError
from .alarms import Alarm, AlarmManager, Severity
from .inventory import Inventory, Node

#: (signature, severity, affected application or "") templates per sensor kind.
_NIDS_SIGNATURES: Tuple[Tuple[str, str, str], ...] = (
    ("ET SCAN Nmap TCP scan detected", Severity.GREEN, ""),
    ("ET POLICY SSH brute force attempt", Severity.YELLOW, ""),
    ("ET WEB_SERVER SQL injection attempt in POST body", Severity.YELLOW, "apache"),
    ("ET EXPLOIT Apache Struts REST plugin RCE (S2-052)", Severity.RED, "apache struts"),
    ("ET MALWARE Known C2 beacon observed", Severity.RED, ""),
    ("ET WEB_SERVER PHP remote file inclusion attempt", Severity.YELLOW, "php"),
    ("ET DOS inbound SYN flood", Severity.RED, ""),
)

_HIDS_SIGNATURES: Tuple[Tuple[str, str, str], ...] = (
    ("Integrity checksum changed for /etc/passwd", Severity.RED, ""),
    ("Multiple failed logins followed by success", Severity.YELLOW, ""),
    ("New package installed outside maintenance window", Severity.GREEN, ""),
    ("Web server error burst in owncloud access log", Severity.YELLOW, "owncloud"),
    ("GitLab repository hook modified", Severity.YELLOW, "gitlab"),
    ("Rootkit signature match in kernel modules", Severity.RED, ""),
)


@dataclass(frozen=True)
class TelemetryObservation:
    """A raw observable a sensor saw (for STIX pattern matching)."""

    node: str
    observable: Dict[str, str]
    timestamp: _dt.datetime


class Sensor:
    """Base simulator: picks signatures and source IPs deterministically."""

    kind = "sensor"
    signatures: Tuple[Tuple[str, str, str], ...] = ()

    def __init__(self, node: Node, seed: int = 0,
                 alarm_rate: float = 0.5) -> None:
        if not 0.0 <= alarm_rate <= 1.0:
            raise ValidationError("alarm_rate must be within [0, 1]")
        self.node = node
        self._rng = random.Random((seed, node.name).__repr__())
        self._alarm_rate = alarm_rate

    def tick(self, now: _dt.datetime) -> List[Alarm]:
        """Possibly produce alarms for this instant."""
        if self._rng.random() >= self._alarm_rate:
            return []
        signature, severity, application = self._rng.choice(self.signatures)
        src = f"203.0.113.{self._rng.randint(1, 254)}"
        dst = self.node.ip_addresses[0] if self.node.ip_addresses else "10.0.0.1"
        return [Alarm(
            node=self.node.name,
            severity=severity,
            description=f"{self.kind}: {signature}",
            ip_src=src,
            ip_dst=dst,
            signature=signature,
            application=application,
            timestamp=now,
        )]

    def observe(self, now: _dt.datetime) -> List[TelemetryObservation]:
        """Raw network/file observations, independent of alarm decisions."""
        observations: List[TelemetryObservation] = []
        src = f"203.0.113.{self._rng.randint(1, 254)}"
        observations.append(TelemetryObservation(
            node=self.node.name,
            observable={"type": "ipv4-addr", "value": src},
            timestamp=now,
        ))
        return observations


class NidsSensor(Sensor):
    """snort/suricata-flavoured network IDS."""

    kind = "nids"
    signatures = _NIDS_SIGNATURES


class HidsSensor(Sensor):
    """ossec-flavoured host IDS."""

    kind = "hids"
    signatures = _HIDS_SIGNATURES


class SensorNetwork:
    """All sensors over an inventory, driven by a shared clock."""

    def __init__(self, inventory: Inventory, clock: Optional[Clock] = None,
                 seed: int = 0, alarm_rate: float = 0.3) -> None:
        self._inventory = inventory
        self._clock = clock or SimulatedClock()
        self.alarm_manager = AlarmManager(clock=self._clock)
        self._sensors: List[Sensor] = []
        for node in inventory.nodes:
            terms = node.software_terms()
            if "nids" in terms or "snort" in terms or "suricata" in terms:
                self._sensors.append(NidsSensor(node, seed=seed, alarm_rate=alarm_rate))
            if "hids" in terms or "ossec" in terms:
                self._sensors.append(HidsSensor(node, seed=seed + 1, alarm_rate=alarm_rate))
        self.telemetry: List[TelemetryObservation] = []

    @property
    def sensors(self) -> List[Sensor]:
        """The instantiated sensors."""
        return list(self._sensors)

    def tick(self, steps: int = 1,
             step: _dt.timedelta = _dt.timedelta(minutes=5)) -> List[Alarm]:
        """Advance the simulation ``steps`` ticks; returns new alarms."""
        produced: List[Alarm] = []
        for _ in range(steps):
            now = self._clock.now()
            for sensor in self._sensors:
                for alarm in sensor.tick(now):
                    self.alarm_manager.raise_alarm(alarm)
                    produced.append(alarm)
                self.telemetry.extend(sensor.observe(now))
            if isinstance(self._clock, SimulatedClock):
                self._clock.advance(step)
        return produced
