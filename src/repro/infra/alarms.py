"""Alarm model for the monitored infrastructure.

Dashboard badge semantics (§III-C1): "Each node will have in its upper left
side a circle indicating the number and severity of the alarms (in colors
green, yellow and red)".  "Alarms will indicate the number of issues, IP
source and destination, as well as a brief description of the issue."
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..clock import Clock, SimulatedClock, ensure_utc
from ..errors import ValidationError


class Severity:
    """Alarm severity, ordered; maps onto the dashboard's badge colour."""

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"

    ALL = (GREEN, YELLOW, RED)
    _ORDER = {GREEN: 0, YELLOW: 1, RED: 2}

    @classmethod
    def worst(cls, severities: Iterable[str]) -> str:
        """The most severe of the given severities (GREEN when empty)."""
        worst = cls.GREEN
        for severity in severities:
            if cls._ORDER[severity] > cls._ORDER[worst]:
                worst = severity
        return worst


@dataclass
class Alarm:
    """One alarm raised against a node."""

    node: str
    severity: str
    description: str
    ip_src: str = ""
    ip_dst: str = ""
    signature: str = ""
    application: str = ""
    timestamp: Optional[_dt.datetime] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.severity not in Severity.ALL:
            raise ValidationError(f"unknown severity {self.severity!r}")
        if not self.node:
            raise ValidationError("alarm must reference a node")
        if self.count < 1:
            raise ValidationError("alarm count must be >= 1")
        if self.timestamp is not None:
            self.timestamp = ensure_utc(self.timestamp)
        self.application = self.application.lower()


class AlarmManager:
    """Holds the live alarm set and answers the dashboard's queries."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._alarms: List[Alarm] = []
        self._clock = clock or SimulatedClock()

    def raise_alarm(self, alarm: Alarm) -> Alarm:
        """Record an alarm (stamping the clock when needed)."""
        if alarm.timestamp is None:
            alarm.timestamp = self._clock.now()
        self._alarms.append(alarm)
        return alarm

    def all(self) -> List[Alarm]:
        """Every stored entry."""
        return list(self._alarms)

    def for_node(self, node: str) -> List[Alarm]:
        """Alarms raised against one node."""
        return [a for a in self._alarms if a.node == node]

    def count_for_node(self, node: str) -> int:
        """Total alarm count (weighted) for one node."""
        return sum(a.count for a in self.for_node(node))

    def worst_severity_for_node(self, node: str) -> str:
        """Most severe alarm level on one node."""
        return Severity.worst(a.severity for a in self.for_node(node))

    def alarms_for_application(self, application: str,
                               window: Optional[_dt.timedelta] = None) -> List[Alarm]:
        """Alarms mentioning an application, optionally within a recency window.

        This is what the ``vuln_app_in_alarm`` feature consults: are there
        alarms from the infrastructure related to the vulnerable application?
        """
        needle = application.lower()
        now = self._clock.now()
        out: List[Alarm] = []
        for alarm in self._alarms:
            mentioned = (needle == alarm.application
                         or needle in alarm.description.lower()
                         or needle in alarm.signature.lower())
            if not mentioned:
                continue
            if window is not None and alarm.timestamp is not None:
                if now - alarm.timestamp > window:
                    continue
            out.append(alarm)
        return out

    def clear(self) -> None:
        """Drop every stored alarm."""
        self._alarms.clear()
