"""Messaging substrate: broker, zeroMQ-style sockets, socket.io-style rooms."""

from .broker import BrokerStats, Message, MessageBroker, Subscription
from .socketio import SocketIOClient, SocketIOServer
from .zmq import ZmqPublisher, ZmqSubscriber

__all__ = [
    "BrokerStats",
    "Message",
    "MessageBroker",
    "Subscription",
    "SocketIOClient",
    "SocketIOServer",
    "ZmqPublisher",
    "ZmqSubscriber",
]
