"""zeroMQ-flavoured PUB/SUB sockets layered on :class:`MessageBroker`.

MISP's real-time feed is a zeroMQ PUB socket publishing JSON documents under
prefix topics such as ``misp_json`` and ``misp_json_attribute``.  This module
reproduces that *prefix-matching* subscription contract (zeroMQ SUB sockets
match on topic prefixes, not globs) so the heuristic component's consumption
code reads exactly like PyMISP/zmq client code.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, List, Optional, Tuple

from .broker import MessageBroker, Message, Subscription


class ZmqPublisher:
    """PUB-socket façade: ``send(topic, document)`` JSON-encodes the payload."""

    def __init__(self, broker: MessageBroker, endpoint: str = "tcp://*:50000") -> None:
        self._broker = broker
        self.endpoint = endpoint
        self.sent = 0

    def send(self, topic: str, document: Any) -> None:
        """Publish a JSON-serializable document under ``topic``."""
        payload = json.dumps(document, sort_keys=True, default=str)
        self._broker.publish(f"zmq.{topic}", payload)
        self.sent += 1


class ZmqSubscriber:
    """SUB-socket façade with zeroMQ prefix-subscription semantics."""

    def __init__(self, broker: MessageBroker, endpoint: str = "tcp://localhost:50000") -> None:
        self._broker = broker
        self.endpoint = endpoint
        self._subscriptions: List[Tuple[str, Subscription]] = []

    def subscribe(self, prefix: str = "") -> None:
        """Subscribe to every topic starting with ``prefix`` (zmq semantics)."""
        subscription = self._broker.subscribe(f"zmq.{prefix}*")
        self._subscriptions.append((prefix, subscription))

    def recv(self) -> Optional[Tuple[str, Any]]:
        """Non-blocking receive: ``(topic, decoded_document)`` or None."""
        for _prefix, subscription in self._subscriptions:
            message = subscription.poll()
            if message is not None:
                return self._decode(message)
        return None

    def drain(self) -> Iterator[Tuple[str, Any]]:
        """Consume every pending message across all subscriptions."""
        for _prefix, subscription in self._subscriptions:
            for message in subscription.drain():
                yield self._decode(message)

    def pending(self) -> int:
        """Number of messages waiting to be consumed."""
        return sum(s.pending() for _p, s in self._subscriptions)

    def close(self) -> None:
        """Release the underlying resources."""
        for _prefix, subscription in self._subscriptions:
            self._broker.unsubscribe(subscription)
        self._subscriptions.clear()

    @staticmethod
    def _decode(message: Message) -> Tuple[str, Any]:
        topic = message.topic[len("zmq."):]
        return topic, json.loads(message.payload)
