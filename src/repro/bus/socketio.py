"""socket.io-flavoured event channel layered on :class:`MessageBroker`.

The platform pushes rIoCs to the dashboard "through specific web sockets,
developed relying on the socket.io library" (§IV-A).  We reproduce the
socket.io *rooms + named events* model: the server emits an event (optionally
scoped to a room), and connected clients receive it through their registered
event handlers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from .broker import MessageBroker, Message


class SocketIOClient:
    """A connected dashboard client: per-event handlers plus a received log."""

    def __init__(self, sid: str) -> None:
        self.sid = sid
        self.rooms: Set[str] = set()
        self._handlers: Dict[str, List[Callable[[Any], None]]] = {}
        self.received: List[tuple[str, Any]] = []

    def on(self, event: str, handler: Callable[[Any], None]) -> None:
        """Register a handler for a named event."""
        self._handlers.setdefault(event, []).append(handler)

    def _dispatch(self, event: str, data: Any) -> None:
        self.received.append((event, data))
        for handler in self._handlers.get(event, []):
            handler(data)


class SocketIOServer:
    """Server side: manages clients, rooms and event emission."""

    def __init__(self, broker: Optional[MessageBroker] = None) -> None:
        self._broker = broker or MessageBroker()
        self._clients: Dict[str, SocketIOClient] = {}
        self._next_sid = 0
        self.emitted = 0
        # Mirror every emit onto the broker so monitoring components can tap
        # the same stream the dashboard receives.
        self._mirror_topic = "socketio.{event}"

    @property
    def broker(self) -> MessageBroker:
        """The underlying message broker."""
        return self._broker

    def connect(self) -> SocketIOClient:
        """Accept a new client connection and return its handle."""
        self._next_sid += 1
        client = SocketIOClient(sid=f"sio-{self._next_sid}")
        self._clients[client.sid] = client
        return client

    def disconnect(self, client: SocketIOClient) -> None:
        """Drop a client connection."""
        self._clients.pop(client.sid, None)
        client.rooms.clear()

    def enter_room(self, client: SocketIOClient, room: str) -> None:
        """Add a client to a named room."""
        if client.sid not in self._clients:
            raise KeyError(f"client {client.sid} is not connected")
        client.rooms.add(room)

    def leave_room(self, client: SocketIOClient, room: str) -> None:
        """Remove a client from a named room."""
        client.rooms.discard(room)

    def clients_in(self, room: Optional[str] = None) -> List[SocketIOClient]:
        """The connected clients in ``room`` (all clients when None)."""
        return [
            client for client in self._clients.values()
            if room is None or room in client.rooms
        ]

    def rooms(self) -> Dict[str, int]:
        """Every room with at least one member, mapped to its member count."""
        counts: Dict[str, int] = {}
        for client in self._clients.values():
            for room in client.rooms:
                counts[room] = counts.get(room, 0) + 1
        return counts

    def emit(self, event: str, data: Any, room: Optional[str] = None) -> int:
        """Emit an event to every client (or only those in ``room``).

        Returns the number of clients that received the event.
        """
        recipients = self.clients_in(room)
        for client in recipients:
            client._dispatch(event, data)
        self.emitted += 1
        self._broker.publish(self._mirror_topic.format(event=event), data)
        return len(recipients)

    def client_count(self) -> int:
        """Number of currently connected clients."""
        return len(self._clients)
