"""In-process message broker.

This is the substrate that stands in for zeroMQ in the paper's architecture:
the MISP instance publishes every incoming cIoC on a topic, and the heuristic
component subscribes to that topic to start the scoring pipeline
("a built-in automated, and real-time, sharing mechanism, based on the
asynchronous messaging library zeroMQ", §IV-A).

The broker is deliberately synchronous-with-queues: ``publish`` appends to
every matching subscription's queue, and consumers drain their queue when
they are ready.  That models zeroMQ's decoupling (a slow subscriber does not
block the publisher) without threads, which keeps tests deterministic.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ..obs import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class Message:
    """A single broker message: a topic plus an arbitrary payload."""

    topic: str
    payload: Any
    sequence: int


@dataclass
class BrokerStats:
    """Counters the benchmarks read to report delivery volume."""

    published: int = 0
    delivered: int = 0
    dropped: int = 0
    topics: Dict[str, int] = field(default_factory=dict)
    #: Per-topic count of messages lost to subscription backpressure —
    #: keyed by the *dropped* message's topic, which can differ from the
    #: incoming one on wildcard subscriptions.
    dropped_topics: Dict[str, int] = field(default_factory=dict)

    @property
    def drop_ratio(self) -> float:
        """Fraction of enqueue attempts that evicted an older message.

        The denominator is every enqueue attempt — deliveries plus the
        evictions they caused — so the ratio is bounded by 1.0 even when
        each delivery drops an older message.
        """
        attempts = self.delivered + self.dropped
        if attempts == 0:
            return 0.0
        return self.dropped / attempts


class Subscription:
    """A consumer-side handle: a bounded FIFO of matching messages.

    ``max_pending`` models zeroMQ's high-water mark: when the queue is full
    the oldest message is dropped and counted, mirroring PUB/SUB loss
    semantics under backpressure.
    """

    def __init__(self, pattern: str, max_pending: int = 100_000) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.pattern = pattern
        self._queue: Deque[Message] = deque()
        self._max_pending = max_pending
        self.dropped = 0
        self._closed = False
        #: Set by :meth:`shed`: the consumer fell too far behind and was
        #: load-shed; deliveries are rejected until :meth:`resume` (the
        #: consumer resynchronizes from a snapshot first).
        self.resync_pending = False

    @property
    def closed(self) -> bool:
        """Whether this handle has been closed."""
        return self._closed

    def matches(self, topic: str) -> bool:
        """Glob-style topic match (``osint.*`` matches ``osint.cioc``)."""
        return fnmatch.fnmatchcase(topic, self.pattern)

    def offer(self, message: Message) -> Tuple[bool, Optional[Message]]:
        """Try to enqueue a message; returns ``(accepted, evicted)``.

        This is the accounting-safe primitive: ``accepted`` is False when
        the subscription is closed or shed (:attr:`resync_pending`), in
        which case *nothing* was enqueued and the caller must not count the
        message as delivered — counting a rejected message both delivered
        and dropped would double-count it into the delivered+dropped
        denominator :attr:`BrokerStats.drop_ratio` divides by.
        """
        if self._closed or self.resync_pending:
            return False, None
        evicted: Optional[Message] = None
        if len(self._queue) >= self._max_pending:
            evicted = self._queue.popleft()
            self.dropped += 1
        self._queue.append(message)
        return True, evicted

    def deliver(self, message: Message) -> Optional[Message]:
        """Enqueue a message; returns the message evicted to make room, if any.

        On a closed or shed subscription nothing is enqueued and None is
        returned — use :meth:`offer` when the caller needs to distinguish
        "enqueued without eviction" from "rejected".
        """
        _accepted, evicted = self.offer(message)
        return evicted

    def shed(self) -> int:
        """Load-shed this consumer: drop the backlog, demand a resync.

        Every queued message is discarded and counted into
        :attr:`dropped` exactly once, and the subscription rejects further
        deliveries until :meth:`resume`.  Idempotent: a second ``shed``
        finds an empty queue and counts nothing, so a shed subscription can
        never double-count its backlog.  Returns how many messages were
        dropped by this call.
        """
        backlog = len(self._queue)
        self._queue.clear()
        self.dropped += backlog
        self.resync_pending = True
        return backlog

    def resume(self) -> None:
        """Accept deliveries again (the consumer has resynchronized)."""
        self.resync_pending = False

    def pending(self) -> int:
        """Number of messages waiting to be consumed."""
        return len(self._queue)

    def poll(self) -> Optional[Message]:
        """Pop the next message, or None when the queue is empty."""
        if self._queue:
            return self._queue.popleft()
        return None

    def drain(self) -> Iterator[Message]:
        """Yield and consume every currently queued message."""
        while self._queue:
            yield self._queue.popleft()

    def close(self) -> None:
        """Release the underlying resources."""
        self._closed = True
        self._queue.clear()


class MessageBroker:
    """Topic-based publish/subscribe hub.

    Subscribers can either poll a :class:`Subscription` or register a
    callback; callbacks fire synchronously inside ``publish`` which is the
    behaviour the platform's single-process pipeline relies on.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._subscriptions: List[Subscription] = []
        self._callbacks: List[tuple[str, Callable[[Message], None]]] = []
        self._sequence = 0
        self.stats = BrokerStats()
        #: Optional :class:`~repro.resilience.FaultInjector` consulted on
        #: every publish (component ``broker``, key = topic).
        self.fault_injector = None
        # BrokerStats stays the cheap attribute API the benches read; the
        # registry carries the same counts into the /metrics exposition.
        metrics = metrics or NULL_REGISTRY
        self._m_published = metrics.counter(
            "caop_bus_published_total", "Messages published on the bus")
        self._m_delivered = metrics.counter(
            "caop_bus_delivered_total", "Messages enqueued or dispatched to consumers")
        self._m_dropped = metrics.counter(
            "caop_bus_dropped_total",
            "Messages evicted by subscription backpressure")

    def subscribe(self, pattern: str, max_pending: int = 100_000) -> Subscription:
        """Create a queue-backed subscription for topics matching ``pattern``."""
        subscription = Subscription(pattern, max_pending=max_pending)
        self._subscriptions.append(subscription)
        return subscription

    def on(self, pattern: str, callback: Callable[[Message], None]) -> None:
        """Register a callback invoked synchronously for matching topics."""
        self._callbacks.append((pattern, callback))

    def unsubscribe(self, subscription: Subscription) -> None:
        """Close a subscription and stop delivering to it."""
        subscription.close()
        self._subscriptions = [s for s in self._subscriptions if s is not subscription]

    def publish(self, topic: str, payload: Any) -> Message:
        """Publish a payload on a topic, fanning out to all matchers."""
        if self.fault_injector is not None:
            self.fault_injector.check("broker", topic)
        self._sequence += 1
        message = Message(topic=topic, payload=payload, sequence=self._sequence)
        self.stats.published += 1
        self.stats.topics[topic] = self.stats.topics.get(topic, 0) + 1
        self._m_published.inc(topic=topic)
        for subscription in self._subscriptions:
            if subscription.closed or not subscription.matches(topic):
                continue
            accepted, evicted = subscription.offer(message)
            if accepted:
                self.stats.delivered += 1
                self._m_delivered.inc()
            else:
                # A shed subscription rejects the message outright: it is
                # lost to backpressure (dropped), never delivered — one
                # count, not both (see Subscription.offer).
                self.stats.dropped += 1
                self.stats.dropped_topics[message.topic] = (
                    self.stats.dropped_topics.get(message.topic, 0) + 1)
                self._m_dropped.inc(topic=message.topic)
            if evicted is not None:
                self.stats.dropped += 1
                self.stats.dropped_topics[evicted.topic] = (
                    self.stats.dropped_topics.get(evicted.topic, 0) + 1)
                self._m_dropped.inc(topic=evicted.topic)
        for pattern, callback in list(self._callbacks):
            if fnmatch.fnmatchcase(topic, pattern):
                callback(message)
                self.stats.delivered += 1
                self._m_delivered.inc()
        return message
