"""In-process message broker.

This is the substrate that stands in for zeroMQ in the paper's architecture:
the MISP instance publishes every incoming cIoC on a topic, and the heuristic
component subscribes to that topic to start the scoring pipeline
("a built-in automated, and real-time, sharing mechanism, based on the
asynchronous messaging library zeroMQ", §IV-A).

The broker is deliberately synchronous-with-queues: ``publish`` appends to
every matching subscription's queue, and consumers drain their queue when
they are ready.  That models zeroMQ's decoupling (a slow subscriber does not
block the publisher) without threads, which keeps tests deterministic.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Message:
    """A single broker message: a topic plus an arbitrary payload."""

    topic: str
    payload: Any
    sequence: int


@dataclass
class BrokerStats:
    """Counters the benchmarks read to report delivery volume."""

    published: int = 0
    delivered: int = 0
    dropped: int = 0
    topics: Dict[str, int] = field(default_factory=dict)


class Subscription:
    """A consumer-side handle: a bounded FIFO of matching messages.

    ``max_pending`` models zeroMQ's high-water mark: when the queue is full
    the oldest message is dropped and counted, mirroring PUB/SUB loss
    semantics under backpressure.
    """

    def __init__(self, pattern: str, max_pending: int = 100_000) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.pattern = pattern
        self._queue: Deque[Message] = deque()
        self._max_pending = max_pending
        self.dropped = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether this handle has been closed."""
        return self._closed

    def matches(self, topic: str) -> bool:
        """Glob-style topic match (``osint.*`` matches ``osint.cioc``)."""
        return fnmatch.fnmatchcase(topic, self.pattern)

    def deliver(self, message: Message) -> bool:
        """Enqueue a message; returns False if one was dropped to make room."""
        if self._closed:
            return False
        dropped = False
        if len(self._queue) >= self._max_pending:
            self._queue.popleft()
            self.dropped += 1
            dropped = True
        self._queue.append(message)
        return not dropped

    def pending(self) -> int:
        """Number of messages waiting to be consumed."""
        return len(self._queue)

    def poll(self) -> Optional[Message]:
        """Pop the next message, or None when the queue is empty."""
        if self._queue:
            return self._queue.popleft()
        return None

    def drain(self) -> Iterator[Message]:
        """Yield and consume every currently queued message."""
        while self._queue:
            yield self._queue.popleft()

    def close(self) -> None:
        """Release the underlying resources."""
        self._closed = True
        self._queue.clear()


class MessageBroker:
    """Topic-based publish/subscribe hub.

    Subscribers can either poll a :class:`Subscription` or register a
    callback; callbacks fire synchronously inside ``publish`` which is the
    behaviour the platform's single-process pipeline relies on.
    """

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self._callbacks: List[tuple[str, Callable[[Message], None]]] = []
        self._sequence = 0
        self.stats = BrokerStats()

    def subscribe(self, pattern: str, max_pending: int = 100_000) -> Subscription:
        """Create a queue-backed subscription for topics matching ``pattern``."""
        subscription = Subscription(pattern, max_pending=max_pending)
        self._subscriptions.append(subscription)
        return subscription

    def on(self, pattern: str, callback: Callable[[Message], None]) -> None:
        """Register a callback invoked synchronously for matching topics."""
        self._callbacks.append((pattern, callback))

    def unsubscribe(self, subscription: Subscription) -> None:
        """Close a subscription and stop delivering to it."""
        subscription.close()
        self._subscriptions = [s for s in self._subscriptions if s is not subscription]

    def publish(self, topic: str, payload: Any) -> Message:
        """Publish a payload on a topic, fanning out to all matchers."""
        self._sequence += 1
        message = Message(topic=topic, payload=payload, sequence=self._sequence)
        self.stats.published += 1
        self.stats.topics[topic] = self.stats.topics.get(topic, 0) + 1
        for subscription in self._subscriptions:
            if subscription.closed or not subscription.matches(topic):
                continue
            if subscription.deliver(message):
                self.stats.delivered += 1
            else:
                self.stats.delivered += 1
                self.stats.dropped += 1
        for pattern, callback in list(self._callbacks):
            if fnmatch.fnmatchcase(topic, pattern):
                callback(message)
                self.stats.delivered += 1
        return message
