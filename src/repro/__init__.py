"""repro: Context-Aware OSINT Platform (CAOP).

A full reproduction of "Enhancing Information Sharing and Visualization
Capabilities in Security Data Analytic Platforms" (DSN 2019): OSINT
collection, normalization, deduplication, aggregation and correlation into
composed IoCs; context-aware heuristic threat scoring (Equation 1) producing
enriched IoCs; inventory-matched reduced IoCs pushed to a topology
dashboard; and standards-based sharing (MISP JSON, STIX 2.0, TAXII).

Quickstart::

    from repro import ContextAwareOSINTPlatform
    platform = ContextAwareOSINTPlatform.build_default()
    report = platform.run_cycle()
    print(report.riocs_created)
"""

from .clock import PAPER_NOW, Clock, SimulatedClock, SystemClock
from .core import (
    ContextAwareOSINTPlatform,
    CycleReport,
    HeuristicComponent,
    OsintDataCollector,
    PlatformConfig,
    ReducedIoc,
    RIocGenerator,
    ThreatScoreResult,
)
from .obs import MetricsRegistry, Span, Tracer
from .errors import (
    ConfigurationError,
    FeedError,
    ParseError,
    PatternError,
    ReproError,
    SharingError,
    StorageError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "PAPER_NOW",
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "ContextAwareOSINTPlatform",
    "CycleReport",
    "HeuristicComponent",
    "OsintDataCollector",
    "PlatformConfig",
    "ReducedIoc",
    "RIocGenerator",
    "ThreatScoreResult",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "ConfigurationError",
    "FeedError",
    "ParseError",
    "PatternError",
    "ReproError",
    "SharingError",
    "StorageError",
    "ValidationError",
    "__version__",
]
