"""Delta-sync machinery for the sharing fan-out.

MISP's server-to-server protocol and TAXII 2.0's collection pulls are both
*incremental*: a consumer only receives what changed since its last
successful sync.  This module gives the :class:`~repro.sharing.SharingGateway`
the same shape over the local store:

- :func:`event_digest` — canonical content digest of one event (sha256 over
  the sorted-key MISP JSON), the identity the ledger and render cache key on;
- :class:`SyncLedger` — per-entity **watermark + digest ledger** persisted in
  :class:`~repro.misp.MispStore` (``sync_state``/``sync_digests`` tables).
  The watermark is an audit-log sequence number: everything the store wrote
  after it is a sync candidate, and the digest ledger then drops candidates
  whose content the entity already holds — so a steady-state cycle shares
  (and renders) nothing;
- :class:`RenderCache` — per-cycle payload cache keyed on ``(digest,
  format)``: a STIX bundle or MISP JSON document is serialized once per
  cycle no matter how many entities receive it;
- :class:`ShareCycleReport` — what one ``sync_cycle`` accomplished.

Determinism contract (docs/SHARING.md): candidates are ordered by their last
audit change, payloads are pre-rendered serially, and ledger writes happen
after the fan-out pool drains — so any ``share_workers`` count produces
byte-identical records, remote stores, digests and watermarks.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..misp import MispEvent, to_stix2_bundle
from ..misp.export import to_misp_json
from ..misp.store import MispStore
from ..obs import MetricsRegistry, NULL_REGISTRY

#: Share outcome labels (the ``caop_share_outcomes_total`` counter values).
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_REFUSED = "refused"
OUTCOME_SKIPPED = "skipped"
OUTCOME_UNCHANGED = "unchanged"

#: Render formats the cache understands.
FORMAT_MISP_JSON = "misp-json"
FORMAT_STIX = "stix"


def event_digest(event: MispEvent) -> str:
    """Canonical content digest of one event.

    Computed over the sorted-key MISP JSON dict, so any two events whose
    ``to_dict`` forms are equal share a digest regardless of attribute
    object identity or construction order.
    """
    return hashlib.sha256(
        json.dumps(event.to_dict(), sort_keys=True).encode()).hexdigest()


@dataclass
class RenderedPayload:
    """One cached serialization: the wire bytes plus transport-ready form."""

    format: str
    text: str
    #: For :data:`FORMAT_STIX`: the bundle's object dicts (what a TAXII
    #: push posts); empty for MISP JSON.
    objects: Tuple[Dict[str, Any], ...] = ()

    @property
    def size(self) -> int:
        """Payload size in bytes (what ``SharingRecord.payload_bytes`` carries)."""
        return len(self.text)


class RenderCache:
    """Payload render cache keyed on ``(content identity, format)``.

    ``get_or_render`` is called serially (pre-fan-out) by the gateway, so a
    payload needed by N entities is serialized exactly once per cycle; the
    hit/miss counters land on ``caop_share_renders_total``.  Other fan-out
    paths (the dashboard's snapshot+delta hub) reuse the same cache shape
    through :meth:`get_or_build` under their own metric name.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 metric_name: str = "caop_share_renders_total",
                 metric_help: str = "Render-cache lookups by the sharing "
                                    "fan-out, labelled hit/miss") -> None:
        self._cache: Dict[Tuple[str, str], RenderedPayload] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        metrics = metrics or NULL_REGISTRY
        self._m_renders = metrics.counter(metric_name, metric_help)

    def get_or_build(self, key: Tuple[str, str],
                     builder: Callable[[], RenderedPayload]
                     ) -> RenderedPayload:
        """The cached payload for ``key``, calling ``builder`` on first use."""
        with self._lock:
            payload = self._cache.get(key)
            if payload is not None:
                self.hits += 1
                self._m_renders.inc(result="hit")
                return payload
        payload = builder()
        with self._lock:
            self._cache[key] = payload
            self.misses += 1
        self._m_renders.inc(result="miss")
        return payload

    def get_or_render(self, event: MispEvent, digest: str,
                      render_format: str) -> RenderedPayload:
        """The cached payload for (digest, format), rendering on first use."""
        return self.get_or_build(
            (digest, render_format),
            lambda: self._render(event, render_format))

    def reset(self) -> None:
        """Drop every cached payload (the hit/miss counters are kept)."""
        with self._lock:
            self._cache.clear()

    @staticmethod
    def _render(event: MispEvent, render_format: str) -> RenderedPayload:
        if render_format == FORMAT_MISP_JSON:
            return RenderedPayload(format=render_format,
                                   text=to_misp_json(event))
        bundle = to_stix2_bundle(event)
        return RenderedPayload(
            format=FORMAT_STIX,
            text=bundle.to_json(),
            objects=tuple(obj.to_dict() for obj in bundle))

    @property
    def renders(self) -> int:
        """Actual serializations performed this cycle (cache misses)."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SyncLedger:
    """Per-entity watermark + digest ledger over a :class:`MispStore`.

    All reads and writes go through the local store on the calling thread;
    the gateway reads the ledger before the fan-out and commits updates
    after the pool drains, in entity registration order.
    """

    def __init__(self, store: MispStore) -> None:
        self._store = store

    @property
    def store(self) -> MispStore:
        """The backing store (the local MISP instance's)."""
        return self._store

    def cursor(self) -> int:
        """The store's current change cursor (max audit seq)."""
        return self._store.max_audit_seq()

    def watermark(self, entity: str) -> int:
        """The entity's persisted watermark (0 when never synced)."""
        return self._store.get_sync_watermark(entity)

    def candidates(self, entity: str,
                   until_seq: Optional[int] = None) -> List[Tuple[str, int]]:
        """Events changed since the entity's watermark, change-ordered."""
        return self._store.events_changed_since(
            self.watermark(entity), until_seq)

    def digests(self, entity: str, uuids: Sequence[str]) -> Dict[str, str]:
        """The digests last successfully shared with ``entity``."""
        return self._store.get_sync_digests(entity, uuids)

    def commit(self, entity: str, digests: Dict[str, str],
               watermark: Optional[int] = None) -> None:
        """Persist one cycle's outcome for an entity (digests, watermark)."""
        self._store.set_sync_digests(entity, digests)
        if watermark is not None and watermark > self.watermark(entity):
            self._store.set_sync_watermark(entity, watermark)

    def record_success(self, entity: str, event: MispEvent,
                       digest: Optional[str] = None) -> None:
        """Mark one event as synced out-of-band (replay, legacy share)."""
        self._store.set_sync_digests(
            entity, {event.uuid: digest or event_digest(event)})


#: Digest-ledger marker prefixes for terminal non-ok outcomes.  A refused
#: or distribution-skipped share is *handled* for that content version (it
#: will not be re-attempted until the event changes), but the marker keeps
#: the ledger honest about what actually crossed the gateway.
def terminal_digest(outcome: str, digest: str) -> str:
    """The ledger entry recording a terminal non-ok outcome for a digest."""
    return f"{outcome}:{digest}"


def digest_matches(ledger_entry: Optional[str], digest: str) -> bool:
    """Whether a ledger entry covers this content digest (ok or terminal)."""
    if ledger_entry is None:
        return False
    return ledger_entry.rsplit(":", 1)[-1] == digest


@dataclass
class PlannedShare:
    """One entity×event unit of a sync cycle, in candidate order."""

    kind: str  # "share" (needs transport) | "refused" (policy, no transport)
    event: Any
    seq: int
    digest: str
    payload: Optional[RenderedPayload] = None
    detail: str = ""
    #: Provenance trace context (``{"trace_id", "path"}``) computed at plan
    #: time on the coordinating thread; rides *alongside* the payload so the
    #: shared content (and its digest) never changes.
    trace: Optional[Dict[str, Any]] = None


@dataclass
class EntityCycle:
    """One entity's slice of a sync cycle (the gateway's internal plan)."""

    entity: Any
    watermark: int
    target_seq: int
    #: Planned units in deterministic candidate (last-change seq) order.
    items: List[PlannedShare] = field(default_factory=list)
    #: Candidates dropped because the entity already holds their digest.
    unchanged: int = 0


@dataclass
class ShareCycleReport:
    """Aggregate outcome of one ``SharingGateway.sync_cycle``."""

    entities: int = 0
    events_considered: int = 0
    shared: int = 0
    failed: int = 0
    refused: int = 0
    skipped: int = 0
    unchanged: int = 0
    breaker_skipped: int = 0
    renders: int = 0
    render_hits: int = 0
    payload_bytes: int = 0
    #: The SharingRecords appended to the gateway audit log this cycle.
    records: List[Any] = field(default_factory=list)

    @property
    def render_hit_rate(self) -> float:
        """Render-cache hit rate across this cycle's payload lookups."""
        total = self.renders + self.render_hits
        return self.render_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (CLI/report surface)."""
        return {
            "entities": self.entities,
            "events_considered": self.events_considered,
            "shared": self.shared,
            "failed": self.failed,
            "refused": self.refused,
            "skipped": self.skipped,
            "unchanged": self.unchanged,
            "breaker_skipped": self.breaker_skipped,
            "renders": self.renders,
            "render_hits": self.render_hits,
            "payload_bytes": self.payload_bytes,
        }
