"""Traffic Light Protocol (TLP) markings and the sharing policy.

Real threat-intel exchanges are governed by TLP: the paper's "trusted
partners, public or private shared repositories" (§I) receive different
slices of intelligence.  MISP conventionally carries TLP as event tags
(``tlp:amber``); this module adds the marking helpers plus a
:class:`SharingPolicy` the gateway consults before anything leaves the
platform:

- **tlp:red** never leaves the organisation;
- **tlp:amber** only reaches entities explicitly cleared for amber;
- **tlp:green** reaches any registered (trusted) entity;
- **tlp:white** is unrestricted.

Unmarked events default to amber (the conservative reading MISP communities
use).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..errors import SharingError, ValidationError
from ..misp import MispEvent


class Tlp:
    """TLP levels ordered from most to least restrictive."""

    RED = "red"
    AMBER = "amber"
    GREEN = "green"
    WHITE = "white"

    ALL = (RED, AMBER, GREEN, WHITE)
    _ORDER = {RED: 0, AMBER: 1, GREEN: 2, WHITE: 3}

    @classmethod
    def tag_for(cls, level: str) -> str:
        """The tlp:* tag string for a level."""
        if level not in cls.ALL:
            raise ValidationError(f"unknown TLP level {level!r}")
        return f"tlp:{level}"

    @classmethod
    def from_tag(cls, tag_name: str) -> Optional[str]:
        """Parse a TLP level out of a tag name; None otherwise."""
        if tag_name.startswith("tlp:"):
            level = tag_name[4:].lower()
            if level in cls.ALL:
                return level
        return None

    @classmethod
    def at_most(cls, level: str, ceiling: str) -> bool:
        """True when ``level`` is shareable under a ``ceiling`` clearance.

        A ceiling of ``amber`` admits amber, green and white — everything
        *at least as permissive* as the marking requires.
        """
        if level not in cls.ALL or ceiling not in cls.ALL:
            raise ValidationError("unknown TLP level")
        return cls._ORDER[level] >= cls._ORDER[ceiling]


#: The marking assumed when an event carries no TLP tag at all.
DEFAULT_TLP = Tlp.AMBER


def tlp_of(event: MispEvent) -> str:
    """Read the event's TLP marking (most restrictive tag wins)."""
    found = [
        level for level in (Tlp.from_tag(tag.name) for tag in event.tags)
        if level is not None
    ]
    if not found:
        return DEFAULT_TLP
    return min(found, key=lambda level: Tlp._ORDER[level])


def mark_tlp(event: MispEvent, level: str) -> MispEvent:
    """Stamp a TLP marking on an event (replacing any existing TLP tags)."""
    if level not in Tlp.ALL:
        raise ValidationError(f"unknown TLP level {level!r}")
    event.tags = [tag for tag in event.tags if Tlp.from_tag(tag.name) is None]
    event.add_tag(Tlp.tag_for(level))
    return event


class SharingPolicy:
    """Per-entity TLP clearances consulted before any share operation.

    ``default_marking`` is the level assumed for events carrying no TLP
    tag at all.  It defaults to the module-wide conservative amber, but a
    deployment can pin it tighter (red: unmarked intelligence never
    leaves) or looser.  Unmarked events are *never* silently shared as if
    unrestricted — they always pass through this fallback.
    """

    def __init__(self, default_clearance: str = Tlp.GREEN,
                 default_marking: str = DEFAULT_TLP) -> None:
        if default_clearance not in Tlp.ALL:
            raise ValidationError(f"unknown TLP level {default_clearance!r}")
        if default_marking not in Tlp.ALL:
            raise ValidationError(f"unknown TLP level {default_marking!r}")
        self._default = default_clearance
        self._default_marking = default_marking
        self._clearances: Dict[str, str] = {}
        self.refusals = 0

    def marking_of(self, event: MispEvent) -> str:
        """The event's effective TLP marking under this policy.

        Tagged events keep their most restrictive tag; untagged events
        fall back to the policy's configured ``default_marking``.
        """
        found = [
            level for level in (Tlp.from_tag(tag.name) for tag in event.tags)
            if level is not None
        ]
        if not found:
            return self._default_marking
        return min(found, key=lambda level: Tlp._ORDER[level])

    def set_clearance(self, entity_name: str, ceiling: str) -> None:
        """Clear an entity up to (and including) the given marking."""
        if ceiling not in Tlp.ALL:
            raise ValidationError(f"unknown TLP level {ceiling!r}")
        self._clearances[entity_name] = ceiling

    def clearance_of(self, entity_name: str) -> str:
        """The TLP ceiling configured for an entity."""
        return self._clearances.get(entity_name, self._default)

    def allows(self, event: MispEvent, entity_name: str) -> bool:
        """May this event be shared with this entity?"""
        marking = self.marking_of(event)
        if marking == Tlp.RED:
            # RED is recipients-in-the-room only: it never crosses the
            # gateway regardless of clearance.
            self.refusals += 1
            return False
        allowed = Tlp.at_most(marking, self.clearance_of(entity_name))
        if not allowed:
            self.refusals += 1
        return allowed

    def check(self, event: MispEvent, entity_name: str) -> None:
        """Raise :class:`SharingError` when the share is not allowed."""
        if not self.allows(event, entity_name):
            raise SharingError(
                f"TLP policy refuses sharing {self.marking_of(event)}-marked "
                f"event {event.uuid} with {entity_name!r} "
                f"(clearance: {self.clearance_of(entity_name)})")
