"""External-entity sharing orchestration (§III-C2).

"The exchange of eIoCs is performed through MISP ... However, when sharing
with external entities that do not use MISP ... the usage of other standards
is preferable ... STIX 2.0 represents a good choice."

An :class:`ExternalEntity` declares which transport it understands; the
:class:`SharingGateway` routes each eIoC accordingly:

- ``misp``  -> MISP-to-MISP sync (MISP JSON);
- ``taxii`` -> STIX 2.0 bundle pushed to a TAXII collection;
- ``stix-download`` -> rendered STIX 2.0 JSON handed over as a document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import SharingError
from ..misp import MispEvent, MispInstance, to_stix2_bundle
from .taxii import TaxiiClient, TaxiiServer


@dataclass
class ExternalEntity:
    """A trusted partner and how to reach it."""

    name: str
    transport: str  # "misp" | "taxii" | "stix-download"
    misp_instance: Optional[MispInstance] = None
    taxii_server: Optional[TaxiiServer] = None
    taxii_collection: str = "indicators"

    def __post_init__(self) -> None:
        if self.transport not in ("misp", "taxii", "stix-download"):
            raise SharingError(f"unknown transport {self.transport!r}")
        if self.transport == "misp" and self.misp_instance is None:
            raise SharingError(f"entity {self.name!r} needs a MISP instance")
        if self.transport == "taxii" and self.taxii_server is None:
            raise SharingError(f"entity {self.name!r} needs a TAXII server")


@dataclass
class SharingRecord:
    """Audit trail entry for one share operation."""

    entity: str
    transport: str
    event_uuid: str
    payload_bytes: int
    ok: bool
    detail: str = ""


class SharingGateway:
    """Shares eIoCs from the local MISP instance with external entities.

    When a :class:`~repro.sharing.policy.SharingPolicy` is attached, every
    share is checked against the event's TLP marking and the entity's
    clearance before any transport is invoked.
    """

    def __init__(self, local_misp: MispInstance, policy=None) -> None:
        self._misp = local_misp
        self._entities: List[ExternalEntity] = []
        self._policy = policy
        self.audit_log: List[SharingRecord] = []

    def register(self, entity: ExternalEntity) -> None:
        """Register a new entry; rejects duplicates."""
        if any(e.name == entity.name for e in self._entities):
            raise SharingError(f"entity {entity.name!r} already registered")
        self._entities.append(entity)

    @property
    def entities(self) -> List[ExternalEntity]:
        """The registered external entities."""
        return list(self._entities)

    def share_event(self, event_uuid: str) -> List[SharingRecord]:
        """Share one stored eIoC with every registered entity."""
        event = self._misp.store.get_event(event_uuid)
        if event is None:
            raise SharingError(f"no such event {event_uuid}")
        records = [self._share_one(event, entity) for entity in self._entities]
        self.audit_log.extend(records)
        return records

    def _share_one(self, event: MispEvent,
                   entity: ExternalEntity) -> SharingRecord:
        if self._policy is not None and not self._policy.allows(event, entity.name):
            from .policy import tlp_of
            return SharingRecord(
                entity=entity.name, transport=entity.transport,
                event_uuid=event.uuid, payload_bytes=0, ok=False,
                detail=f"refused by TLP policy (marking: {tlp_of(event)})",
            )
        try:
            if entity.transport == "misp":
                pushed = self._misp.push_event(event, entity.misp_instance)
                payload = len(self._misp.export_event(event.uuid, "misp-json"))
                return SharingRecord(
                    entity=entity.name, transport="misp",
                    event_uuid=event.uuid, payload_bytes=payload,
                    ok=pushed,
                    detail="" if pushed else "skipped (distribution/duplicate)",
                )
            if entity.transport == "taxii":
                bundle = to_stix2_bundle(event)
                client = TaxiiClient(entity.taxii_server)
                status = client.push_bundle(entity.taxii_collection, bundle)
                payload = len(bundle.to_json())
                ok = status["failure_count"] == 0 and status["success_count"] > 0
                return SharingRecord(
                    entity=entity.name, transport="taxii",
                    event_uuid=event.uuid, payload_bytes=payload, ok=ok,
                    detail=f"accepted {status['success_count']} objects",
                )
            # stix-download: render and hand over.
            document = to_stix2_bundle(event).to_json()
            return SharingRecord(
                entity=entity.name, transport="stix-download",
                event_uuid=event.uuid, payload_bytes=len(document), ok=True,
            )
        except SharingError as exc:
            return SharingRecord(
                entity=entity.name, transport=entity.transport,
                event_uuid=event.uuid, payload_bytes=0, ok=False,
                detail=str(exc),
            )

    def stats(self) -> Dict[str, int]:
        """Aggregate counters over the audit log."""
        out: Dict[str, int] = {"shared": 0, "failed": 0, "bytes": 0}
        for record in self.audit_log:
            out["shared" if record.ok else "failed"] += 1
            out["bytes"] += record.payload_bytes
        return out
