"""External-entity sharing orchestration (§III-C2).

"The exchange of eIoCs is performed through MISP ... However, when sharing
with external entities that do not use MISP ... the usage of other standards
is preferable ... STIX 2.0 represents a good choice."

An :class:`ExternalEntity` declares which transport it understands; the
:class:`SharingGateway` routes each eIoC accordingly:

- ``misp``  -> MISP-to-MISP sync (MISP JSON);
- ``taxii`` -> STIX 2.0 bundle pushed to a TAXII collection;
- ``stix-download`` -> rendered STIX 2.0 JSON handed over as a document.

Two share paths exist:

- :meth:`SharingGateway.share_event` — the historical one-event broadcast
  (serial, immediate);
- :meth:`SharingGateway.sync_cycle` — the scalable path: a **delta sync**
  over the store's audit cursor (per-entity watermark + content-digest
  ledger in :class:`~repro.misp.MispStore`), payloads rendered once per
  cycle through a :class:`~repro.sharing.sync.RenderCache`, and the
  per-entity fan-out run on a bounded thread pool with circuit breakers,
  deterministic retry backoff and dead-letter quarantine.  Any worker count
  produces byte-identical records, remote stores, digests and watermarks
  (docs/SHARING.md).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..clock import Clock, SimulatedClock
from ..errors import SharingError
from ..misp import MispEvent, MispInstance
from ..misp.store import BATCH_SIZE_BUCKETS
from ..obs import (
    BYTES_BUCKETS,
    LogBuffer,
    MetricsRegistry,
    NULL_LOG,
    NULL_RECORDER,
    NULL_REGISTRY,
    ProvenanceRecorder,
    StructuredLog,
    Tracer,
    share_context,
)
from ..resilience.breaker import BreakerState, CircuitBreakerBoard
from ..resilience.retry import RetryPolicy, sleeper_for
from .taxii import TaxiiServer
from .sync import (
    FORMAT_MISP_JSON,
    FORMAT_STIX,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_REFUSED,
    OUTCOME_SKIPPED,
    EntityCycle,
    PlannedShare,
    RenderCache,
    RenderedPayload,
    ShareCycleReport,
    SyncLedger,
    digest_matches,
    event_digest,
    terminal_digest,
)


@dataclass
class ExternalEntity:
    """A trusted partner and how to reach it."""

    name: str
    transport: str  # "misp" | "taxii" | "stix-download" | "backbone"
    misp_instance: Optional[MispInstance] = None
    taxii_server: Optional[TaxiiServer] = None
    taxii_collection: str = "indicators"
    #: For the ``backbone`` transport: the federation fabric to transmit
    #: over; the entity name is the destination org.
    backbone: Optional[Any] = None
    #: Simulated per-share transport latency; really slept only when the
    #: gateway runs with ``realtime=True`` (wall-clock benches).
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.transport not in ("misp", "taxii", "stix-download",
                                  "backbone"):
            raise SharingError(f"unknown transport {self.transport!r}")
        if self.transport == "misp" and self.misp_instance is None:
            raise SharingError(f"entity {self.name!r} needs a MISP instance")
        if self.transport == "taxii" and self.taxii_server is None:
            raise SharingError(f"entity {self.name!r} needs a TAXII server")
        if self.transport == "backbone" and self.backbone is None:
            raise SharingError(f"entity {self.name!r} needs a backbone")

    @property
    def render_format(self) -> str:
        """Which render-cache format this entity's transport consumes."""
        if self.transport in ("misp", "backbone"):
            return FORMAT_MISP_JSON
        return FORMAT_STIX


@dataclass
class SharingRecord:
    """Audit trail entry for one share operation.

    ``payload_bytes`` counts bytes actually handed to the transport: a share
    that fails (or is refused/skipped) *before* transport carries 0, not the
    would-be payload size.
    """

    entity: str
    transport: str
    event_uuid: str
    payload_bytes: int
    ok: bool
    detail: str = ""


@dataclass
class _EntityOutcome:
    """What one entity's fan-out worker produced (merged post-drain)."""

    records: List[SharingRecord] = field(default_factory=list)
    #: uuid -> ledger entry (raw digest for ok, marker for terminal non-ok).
    digests: Dict[str, str] = field(default_factory=dict)
    #: Audit seqs of candidates that must block the watermark (transport
    #: failures and breaker-skipped, i.e. anything that must be retried).
    blocked_seqs: List[int] = field(default_factory=list)
    #: (event, reason) pairs to quarantine, in candidate order.
    quarantine: List[Tuple[Any, str]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    backoff: float = 0.0
    payload_bytes: int = 0
    breaker_skipped: int = 0

    def count(self, outcome: str) -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + 1


class SharingGateway:
    """Shares eIoCs from the local MISP instance with external entities.

    When a :class:`~repro.sharing.policy.SharingPolicy` is attached, every
    share is checked against the event's TLP marking and the entity's
    clearance before any transport is invoked.

    ``workers`` bounds the fan-out pool used by :meth:`sync_cycle`; 1 keeps
    the serial behaviour.  ``retry_policy`` governs transient transport
    retries (none by default), ``breakers`` trips a per-entity circuit after
    consecutive transport failures, and ``deadletters`` quarantines shares
    that exhaust their retries for a later ``replay``.
    """

    def __init__(self, local_misp: MispInstance, policy=None, *,
                 workers: int = 1,
                 retry_policy: Optional[RetryPolicy] = None,
                 breakers: Optional[CircuitBreakerBoard] = None,
                 deadletters=None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None,
                 sleeper=None,
                 fault_injector=None,
                 realtime: bool = False,
                 tracer: Optional[Tracer] = None,
                 provenance: Optional[ProvenanceRecorder] = None,
                 log: Optional[StructuredLog] = None) -> None:
        if workers < 1:
            raise SharingError("workers must be positive")
        self._misp = local_misp
        self._tracer = tracer or Tracer(enabled=False)
        self._provenance = provenance or NULL_RECORDER
        self._log = log or NULL_LOG
        self._entities: List[ExternalEntity] = []
        self._policy = policy
        self._workers = workers
        self._retry = retry_policy
        self._clock = clock or SimulatedClock()
        self.breakers = breakers if breakers is not None else \
            CircuitBreakerBoard(clock=self._clock)
        self._deadletters = deadletters
        self._sleeper = sleeper if sleeper is not None else \
            sleeper_for("virtual", self._clock)
        self.fault_injector = fault_injector
        self._realtime = realtime
        self.ledger = SyncLedger(local_misp.store)
        self.audit_log: List[SharingRecord] = []
        #: Serializes every transport touch of the local instance and of
        #: shared remote endpoints (MISP peer stores are SQLite connections;
        #: safe across threads only when accesses never overlap).
        self._transport_lock = threading.Lock()
        self._metrics = metrics or NULL_REGISTRY
        self._m_pool = self._metrics.gauge(
            "caop_share_pool_workers",
            "Worker threads used by the last sync_cycle fan-out")
        self._m_batch = self._metrics.histogram(
            "caop_share_batch_size",
            "Events actually shared per entity per sync cycle",
            buckets=BATCH_SIZE_BUCKETS)
        self._m_payload = self._metrics.histogram(
            "caop_share_payload_bytes",
            "Bytes handed to a transport per successful share",
            buckets=BYTES_BUCKETS)
        self._m_outcomes = self._metrics.counter(
            "caop_share_outcomes_total",
            "Share outcomes per entity (ok/failed/refused/skipped/"
            "unchanged/breaker_open)")
        self._m_backoff = self._metrics.histogram(
            "caop_retry_backoff_seconds",
            "Backoff computed before each retry attempt")
        self._m_cycles = self._metrics.counter(
            "caop_share_cycles_total", "Completed sharing sync cycles")

    # -- registration ---------------------------------------------------------

    def register(self, entity: ExternalEntity) -> None:
        """Register a new entry; rejects duplicates.

        Registering a ``backbone`` entity on a policy-less gateway attaches
        a default :class:`~repro.sharing.policy.SharingPolicy`: federation
        boundaries always enforce TLP, so events with no marking fall back
        to the configured default level instead of being silently shared.
        """
        if any(e.name == entity.name for e in self._entities):
            raise SharingError(f"entity {entity.name!r} already registered")
        if entity.transport == "backbone" and self._policy is None:
            from .policy import SharingPolicy
            self._policy = SharingPolicy()
        self._entities.append(entity)

    @property
    def entities(self) -> List[ExternalEntity]:
        """The registered external entities."""
        return list(self._entities)

    @property
    def workers(self) -> int:
        """The configured fan-out pool bound."""
        return self._workers

    def entity(self, name: str) -> ExternalEntity:
        """Look one registered entity up by name."""
        for candidate in self._entities:
            if candidate.name == name:
                return candidate
        raise SharingError(f"no such entity {name!r}")

    # -- legacy one-event broadcast -------------------------------------------

    def share_event(self, event_uuid: str) -> List[SharingRecord]:
        """Share one stored eIoC with every registered entity (serial).

        Successful shares land in the delta-sync digest ledger too, so a
        following :meth:`sync_cycle` will not re-send the same content.
        """
        event = self._misp.store.get_event(event_uuid)
        if event is None:
            raise SharingError(f"no such event {event_uuid}")
        digest = event_digest(event)
        cache = RenderCache(self._metrics)
        trace_cache: Dict[str, Optional[Dict[str, Any]]] = {}
        records = []
        for entity in self._entities:
            record = self._share_one(event, digest, entity, cache,
                                     trace=self._share_trace(
                                         entity, event.uuid, trace_cache))
            if record.ok:
                self.ledger.record_success(entity.name, event, digest)
            records.append(record)
        self.audit_log.extend(records)
        return records

    def _share_trace(self, entity: ExternalEntity, event_uuid: str,
                     cache: Optional[Dict[str, Optional[Dict[str, Any]]]] = None
                     ) -> Optional[Dict[str, Any]]:
        """Trace context to ride alongside a MISP push (None otherwise).

        Reads the local provenance table, so it must run on the coordinating
        thread (plan time), never inside a fan-out worker.
        """
        if entity.transport not in ("misp", "backbone") or \
                not self._provenance.enabled:
            return None
        if cache is not None and event_uuid in cache:
            return cache[event_uuid]
        context = share_context(self._misp.store, event_uuid, self._misp.org)
        if cache is not None:
            cache[event_uuid] = context
        return context

    def _share_one(self, event: MispEvent, digest: str,
                   entity: ExternalEntity,
                   cache: RenderCache,
                   trace: Optional[Dict[str, Any]] = None) -> SharingRecord:
        if self._policy is not None and not self._policy.allows(event, entity.name):
            return SharingRecord(
                entity=entity.name, transport=entity.transport,
                event_uuid=event.uuid, payload_bytes=0, ok=False,
                detail=f"refused by TLP policy "
                       f"(marking: {self._policy.marking_of(event)})",
            )
        payload = cache.get_or_render(event, digest, entity.render_format)
        try:
            ok, detail, sent_bytes = self._transport_push(
                event, entity, payload, trace=trace)
        except SharingError as exc:
            return SharingRecord(
                entity=entity.name, transport=entity.transport,
                event_uuid=event.uuid, payload_bytes=0, ok=False,
                detail=str(exc),
            )
        return SharingRecord(
            entity=entity.name, transport=entity.transport,
            event_uuid=event.uuid, payload_bytes=sent_bytes, ok=ok,
            detail=detail,
        )

    # -- transports -----------------------------------------------------------

    def _transport_push(self, event: MispEvent, entity: ExternalEntity,
                        payload: RenderedPayload,
                        trace: Optional[Dict[str, Any]] = None
                        ) -> Tuple[bool, str, int]:
        """One transport attempt: (ok, detail, bytes actually handed over).

        Raises :class:`SharingError` on transport faults (retryable); a
        ``False`` return is a *terminal* non-ok outcome (distribution skip,
        rejected objects) that retrying cannot change.
        """
        if self.fault_injector is not None:
            self.fault_injector.check("share", entity.name)
        if self._realtime and entity.latency_seconds > 0:
            time.sleep(entity.latency_seconds)
        if entity.transport == "misp":
            with self._transport_lock:
                pushed = self._misp.push_event(event, entity.misp_instance,
                                               trace_context=trace)
            if pushed:
                return True, "", payload.size
            return False, "skipped (distribution/duplicate)", 0
        if entity.transport == "backbone":
            # The entity name is the destination org on the federation
            # fabric.  The same MISP release gate and hop downgrade as a
            # point-to-point push apply before anything is transmitted;
            # the wire document is the downgraded copy, so the receiver
            # stores exactly what a direct peer push would have stored.
            with self._transport_lock:
                ok, group, reason = self._misp.release_gate(
                    event, entity.name)
                if not ok:
                    return False, f"skipped ({reason})", 0
                copy = self._misp.release_copy(event)
                from ..misp.export import to_misp_json
                message: Dict[str, Any] = {"document": to_misp_json(copy)}
                if group is not None:
                    message["sharing_group"] = group.to_dict()
                if trace is not None:
                    message["trace"] = trace
                response = entity.backbone.transmit(
                    self._misp.org, entity.name, "event", message)
            if response.get("accepted"):
                return True, "", len(message["document"])
            detail = response.get("reason", "rejected")
            return False, f"skipped ({detail})", 0
        if entity.transport == "taxii":
            with self._transport_lock:
                status = entity.taxii_server.add_objects(
                    entity.taxii_collection, list(payload.objects))
            ok = status["failure_count"] == 0 and status["success_count"] > 0
            detail = f"accepted {status['success_count']} objects"
            return ok, detail, payload.size if ok else 0
        # stix-download: the rendered document is the handover.
        return True, "", payload.size

    # -- delta-sync fan-out ----------------------------------------------------

    def plan_cycle(self) -> Tuple[List[EntityCycle], RenderCache, int]:
        """Build every entity's delta plan and pre-render the payloads.

        Runs entirely on the calling thread (all local-store reads happen
        here): scans each entity's candidates from its watermark up to the
        store's current audit cursor, drops digest-unchanged candidates,
        applies the sharing policy, and renders each needed payload once
        through the returned :class:`RenderCache`.
        """
        target_seq = self.ledger.cursor()
        cache = RenderCache(self._metrics)
        raw_candidates = [
            self.ledger.candidates(entity.name, target_seq)
            for entity in self._entities
        ]
        wanted: "OrderedDict[str, None]" = OrderedDict()
        for candidates in raw_candidates:
            for uuid, _seq in candidates:
                wanted.setdefault(uuid)
        events = self._misp.store.get_events(list(wanted))
        digests = {uuid: event_digest(event)
                   for uuid, event in events.items() if event is not None}
        plans: List[EntityCycle] = []
        trace_cache: Dict[str, Optional[Dict[str, Any]]] = {}
        for entity, candidates in zip(self._entities, raw_candidates):
            plan = EntityCycle(
                entity=entity,
                watermark=self.ledger.watermark(entity.name),
                target_seq=target_seq)
            known = self.ledger.digests(
                entity.name, [uuid for uuid, _seq in candidates])
            for uuid, seq in candidates:
                event = events.get(uuid)
                if event is None:
                    continue
                digest = digests[uuid]
                if digest_matches(known.get(uuid), digest):
                    plan.unchanged += 1
                    continue
                if self._policy is not None and \
                        not self._policy.allows(event, entity.name):
                    plan.items.append(PlannedShare(
                        kind="refused", event=event, seq=seq, digest=digest,
                        detail=f"refused by TLP policy (marking: "
                               f"{self._policy.marking_of(event)})"))
                    continue
                payload = cache.get_or_render(event, digest,
                                              entity.render_format)
                plan.items.append(PlannedShare(
                    kind="share", event=event, seq=seq, digest=digest,
                    payload=payload,
                    trace=self._share_trace(entity, uuid, trace_cache)))
            plans.append(plan)
        return plans, cache, target_seq

    def sync_cycle(self) -> ShareCycleReport:
        """One incremental share fan-out across every registered entity.

        Deterministic for any ``workers`` count: plans and payloads are
        built serially up front, each entity's shares run serially inside
        one worker, and all ledger/audit/quarantine writes are committed
        after the pool drains, in entity registration order.
        """
        report = ShareCycleReport(entities=len(self._entities))
        if not self._entities:
            return report
        plans, cache, _target = self.plan_cycle()
        pool_size = max(1, min(self._workers, len(plans)))
        self._m_pool.set(pool_size)
        # One log buffer per entity: workers stage records thread-locally,
        # the post-drain commit flushes them in registration order, so the
        # structured log is byte-identical at any worker count.
        buffers = [self._log.buffer() for _ in plans]
        parent_span = self._tracer.capture()

        def run_entity(plan: EntityCycle, buffer: LogBuffer) -> _EntityOutcome:
            with self._tracer.attach(parent_span), \
                    self._tracer.span("share_entity", entity=plan.entity.name):
                return self._run_entity_cycle(plan, buffer)

        if pool_size == 1:
            outcomes = [run_entity(plan, buffer)
                        for plan, buffer in zip(plans, buffers)]
        else:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                futures = [pool.submit(run_entity, plan, buffer)
                           for plan, buffer in zip(plans, buffers)]
                outcomes = [future.result() for future in futures]
        # Post-drain commit, serial and in registration order: backoff,
        # audit records, log records, lineage, ledger updates, quarantine,
        # telemetry.
        for plan, outcome, buffer in zip(plans, outcomes, buffers):
            entity = plan.entity
            self._sleeper.sleep(outcome.backoff)
            self.audit_log.extend(outcome.records)
            self._log.flush_buffer(buffer)
            if self._provenance.enabled:
                for record in outcome.records:
                    if record.ok:
                        self._provenance.record(
                            "shared-to", record.event_uuid, actor="gateway",
                            detail=f"entity={record.entity} "
                                   f"transport={record.transport}")
            report.records.extend(outcome.records)
            new_watermark: Optional[int] = plan.target_seq
            if outcome.blocked_seqs:
                new_watermark = min(outcome.blocked_seqs) - 1
            self.ledger.commit(entity.name, outcome.digests, new_watermark)
            if self._deadletters is not None:
                for event, reason in outcome.quarantine:
                    self._deadletters.quarantine_share(
                        entity.name, event, reason=reason)
            for outcome_name, count in sorted(outcome.counts.items()):
                self._m_outcomes.inc(count, entity=entity.name,
                                     outcome=outcome_name)
            if plan.unchanged:
                self._m_outcomes.inc(plan.unchanged, entity=entity.name,
                                     outcome="unchanged")
            shared = outcome.counts.get(OUTCOME_OK, 0)
            self._m_batch.observe(shared, entity=entity.name)
            report.events_considered += len(plan.items) + plan.unchanged
            report.shared += shared
            report.failed += outcome.counts.get(OUTCOME_FAILED, 0)
            report.refused += outcome.counts.get(OUTCOME_REFUSED, 0)
            report.skipped += outcome.counts.get(OUTCOME_SKIPPED, 0)
            report.unchanged += plan.unchanged
            report.breaker_skipped += outcome.breaker_skipped
            report.payload_bytes += outcome.payload_bytes
        report.renders = cache.misses
        report.render_hits = cache.hits
        self._provenance.flush()
        self._m_cycles.inc()
        return report

    def _run_entity_cycle(self, plan: EntityCycle,
                          buffer: Optional[LogBuffer] = None
                          ) -> _EntityOutcome:
        """One entity's serial share sequence (runs inside a pool worker).

        Touches only the entity's transport (and thread-safe shared
        machinery: breaker, metrics counters); every local-store write is
        deferred to the post-drain commit.  Log records are staged into
        ``buffer`` (flushed post-drain, in registration order).
        """
        outcome = _EntityOutcome()
        entity = plan.entity
        breaker = self.breakers.breaker(entity.name)
        for item in plan.items:
            if item.kind == "refused":
                outcome.records.append(SharingRecord(
                    entity=entity.name, transport=entity.transport,
                    event_uuid=item.event.uuid, payload_bytes=0, ok=False,
                    detail=item.detail))
                outcome.digests[item.event.uuid] = terminal_digest(
                    OUTCOME_REFUSED, item.digest)
                outcome.count(OUTCOME_REFUSED)
                if buffer is not None:
                    buffer.emit("share", "share_result", level="warn",
                                entity=entity.name,
                                event_uuid=item.event.uuid,
                                outcome=OUTCOME_REFUSED)
                continue
            if not breaker.allow():
                # Open breaker: leave the event pending (no record, no
                # ledger write) so the watermark holds it for a later cycle.
                outcome.blocked_seqs.append(item.seq)
                outcome.breaker_skipped += 1
                outcome.count("breaker_open")
                if buffer is not None:
                    buffer.emit("share", "share_result", level="warn",
                                entity=entity.name,
                                event_uuid=item.event.uuid,
                                outcome="breaker_open")
                continue
            probing = breaker.state == BreakerState.HALF_OPEN
            record, entry, failed = self._attempt_share(
                entity, item, breaker, probing, outcome)
            outcome.records.append(record)
            if entry is not None:
                outcome.digests[item.event.uuid] = entry
            if failed:
                outcome.blocked_seqs.append(item.seq)
                outcome.quarantine.append((item.event, record.detail))
            if buffer is not None:
                buffer.emit(
                    "share", "share_result",
                    level="warn" if failed else "info",
                    entity=entity.name, event_uuid=item.event.uuid,
                    outcome=OUTCOME_OK if record.ok else
                    (OUTCOME_FAILED if failed else OUTCOME_SKIPPED))
        return outcome

    def _attempt_share(self, entity: ExternalEntity, item: PlannedShare,
                       breaker, probing: bool, outcome: _EntityOutcome
                       ) -> Tuple[SharingRecord, Optional[str], bool]:
        """Share one event with retries: (record, ledger entry, failed?)."""
        max_retries = self._retry.max_retries if self._retry is not None else 0
        attempts = 1 if probing else max_retries + 1
        last_error: Optional[SharingError] = None
        for attempt in range(attempts):
            try:
                ok, detail, sent_bytes = self._transport_push(
                    item.event, entity, item.payload, trace=item.trace)
            except SharingError as exc:
                last_error = exc
                if attempt < attempts - 1:
                    delay = self._retry.delay(
                        f"share:{entity.name}:{item.event.uuid}", attempt)
                    self._m_backoff.observe(delay, component="share")
                    outcome.backoff += delay
                continue
            if ok:
                breaker.record_success()
                outcome.count(OUTCOME_OK)
                outcome.payload_bytes += sent_bytes
                self._m_payload.observe(sent_bytes, entity=entity.name)
                return (SharingRecord(
                    entity=entity.name, transport=entity.transport,
                    event_uuid=item.event.uuid, payload_bytes=sent_bytes,
                    ok=True, detail=detail), item.digest, False)
            # Terminal non-ok (distribution skip, rejected objects): the
            # transport answered, so the breaker counts it as a success and
            # the ledger marks the content version handled.
            breaker.record_success()
            outcome.count(OUTCOME_SKIPPED)
            return (SharingRecord(
                entity=entity.name, transport=entity.transport,
                event_uuid=item.event.uuid, payload_bytes=0, ok=False,
                detail=detail),
                terminal_digest(OUTCOME_SKIPPED, item.digest), False)
        breaker.record_failure()
        outcome.count(OUTCOME_FAILED)
        detail = f"transport failed after {attempts} attempt(s): {last_error}"
        return (SharingRecord(
            entity=entity.name, transport=entity.transport,
            event_uuid=item.event.uuid, payload_bytes=0, ok=False,
            detail=detail), None, True)

    # -- dead-letter replay ----------------------------------------------------

    def replay_share(self, entity_name: str, event: MispEvent) -> bool:
        """Re-drive one quarantined share (called by ``DeadLetterQueue.replay``).

        Renders fresh (the event may have changed since quarantine), pushes
        through the normal transport attempt (single try — the caller
        decides about re-quarantine), and records the ledger digest on
        success so the next :meth:`sync_cycle` treats it as handled.
        """
        entity = self.entity(entity_name)
        digest = event_digest(event)
        cache = RenderCache(self._metrics)
        payload = cache.get_or_render(event, digest, entity.render_format)
        breaker = self.breakers.breaker(entity.name)
        if not breaker.allow():
            return False
        # replay runs on the coordinating thread, so reading the local
        # provenance table for the trace context is safe here.
        trace = self._share_trace(entity, event.uuid)
        try:
            ok, detail, sent_bytes = self._transport_push(
                event, entity, payload, trace=trace)
        except SharingError:
            breaker.record_failure()
            return False
        breaker.record_success()
        record = SharingRecord(
            entity=entity.name, transport=entity.transport,
            event_uuid=event.uuid, payload_bytes=sent_bytes if ok else 0,
            ok=ok, detail=detail or "dead-letter replay")
        self.audit_log.append(record)
        entry = digest if ok else terminal_digest(OUTCOME_SKIPPED, digest)
        self._misp.store.set_sync_digests(entity.name, {event.uuid: entry})
        if ok and self._provenance.enabled:
            # Mirror sync_cycle's lineage row: a replayed share that landed
            # is the same "shared-to" fact, just recorded later.
            self._provenance.record(
                "shared-to", event.uuid, actor="gateway",
                detail=f"entity={entity.name} "
                       f"transport={entity.transport}")
            self._provenance.flush()
        self._m_outcomes.inc(entity=entity.name,
                             outcome=OUTCOME_OK if ok else OUTCOME_SKIPPED)
        return True

    # -- stats ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Aggregate counters over the audit log."""
        out: Dict[str, int] = {"shared": 0, "failed": 0, "bytes": 0}
        for record in self.audit_log:
            out["shared" if record.ok else "failed"] += 1
            out["bytes"] += record.payload_bytes
        return out

    def watermarks(self) -> Dict[str, int]:
        """Per-entity persisted watermarks (entity -> audit seq)."""
        return {entity.name: self.ledger.watermark(entity.name)
                for entity in self._entities}
