"""Sharing: TAXII-lite, external entities, SIEM connector + detection metrics."""

from .external import ExternalEntity, SharingGateway, SharingRecord
from .policy import DEFAULT_TLP, SharingPolicy, Tlp, mark_tlp, tlp_of
from .siem import CorrelationRule, DetectionReport, SiemAlert, SiemConnector
from .taxii import TaxiiClient, TaxiiCollection, TaxiiServer

__all__ = [
    "ExternalEntity",
    "DEFAULT_TLP",
    "SharingPolicy",
    "Tlp",
    "mark_tlp",
    "tlp_of",
    "SharingGateway",
    "SharingRecord",
    "CorrelationRule",
    "DetectionReport",
    "SiemAlert",
    "SiemConnector",
    "TaxiiClient",
    "TaxiiCollection",
    "TaxiiServer",
]
