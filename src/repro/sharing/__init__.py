"""Sharing: TAXII-lite, external entities, SIEM connector + detection metrics."""

from .external import ExternalEntity, SharingGateway, SharingRecord
from .policy import DEFAULT_TLP, SharingPolicy, Tlp, mark_tlp, tlp_of
from .siem import CorrelationRule, DetectionReport, SiemAlert, SiemConnector
from .sync import (
    FORMAT_MISP_JSON,
    FORMAT_STIX,
    RenderCache,
    RenderedPayload,
    ShareCycleReport,
    SyncLedger,
    digest_matches,
    event_digest,
    terminal_digest,
)
from .taxii import TaxiiClient, TaxiiCollection, TaxiiServer

__all__ = [
    "ExternalEntity",
    "DEFAULT_TLP",
    "FORMAT_MISP_JSON",
    "FORMAT_STIX",
    "RenderCache",
    "RenderedPayload",
    "ShareCycleReport",
    "SharingPolicy",
    "SyncLedger",
    "Tlp",
    "digest_matches",
    "event_digest",
    "mark_tlp",
    "terminal_digest",
    "tlp_of",
    "SharingGateway",
    "SharingRecord",
    "CorrelationRule",
    "DetectionReport",
    "SiemAlert",
    "SiemConnector",
    "TaxiiCollection",
    "TaxiiClient",
    "TaxiiServer",
]
