"""SIEM connector: rIoCs -> correlation rules -> detections.

§IV-C: the threat score "is used by (i) SIEMs, as an input to develop new
correlation rules in order to improve incident detection and response"; §VI
plans evaluation "in terms of detection, false positive and false negative
rates".  This connector closes that loop: it converts rIoCs/eIoCs into
value-match and STIX-pattern rules, replays infrastructure telemetry against
them, and reports the confusion matrix.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ValidationError
from ..misp import CORRELATABLE_TYPES, MispEvent
from ..stix import CompiledPattern, Observation

#: MISP attribute type -> the observable type its value matches.
_ATTRIBUTE_OBSERVABLE_TYPE: Mapping[str, str] = {
    "ip-src": "ipv4-addr", "ip-dst": "ipv4-addr",
    "domain": "domain-name", "hostname": "domain-name",
    "url": "url", "md5": "file", "sha1": "file", "sha256": "file",
    "email-src": "email-addr",
}


@dataclass(frozen=True)
class CorrelationRule:
    """One SIEM rule: match a value (or a pattern) with a priority score."""

    rule_id: str
    description: str
    threat_score: float
    value: Optional[str] = None            # simple value-match rule
    observable_type: Optional[str] = None
    pattern: Optional[str] = None          # STIX pattern rule

    def __post_init__(self) -> None:
        if self.value is None and self.pattern is None:
            raise ValidationError("a rule needs a value or a pattern")


@dataclass(frozen=True)
class SiemAlert:
    """A rule firing on one observation."""

    rule_id: str
    matched_value: str
    threat_score: float
    timestamp: _dt.datetime


@dataclass
class DetectionReport:
    """Confusion counts for a replayed telemetry stream."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def detection_rate(self) -> float:
        """Recall: TP / (TP + FN)."""
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN)."""
        total = self.false_positives + self.true_negatives
        return self.false_positives / total if total else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP)."""
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and detection rate."""
        p, r = self.precision, self.detection_rate
        return 2 * p * r / (p + r) if (p + r) else 0.0


class SiemConnector:
    """A minimal SIEM rule engine fed by the platform's output module."""

    def __init__(self, min_threat_score: float = 0.0,
                 warninglists: "Optional[object]" = None) -> None:
        if not 0.0 <= min_threat_score <= 5.0:
            raise ValidationError("min_threat_score must be within [0, 5]")
        self.min_threat_score = min_threat_score
        self._value_rules: Dict[Tuple[str, str], CorrelationRule] = {}
        self._pattern_rules: List[Tuple[CompiledPattern, CorrelationRule]] = []
        self._warninglists = warninglists
        self._sequence_rules: List[Tuple[CompiledPattern, _dt.timedelta,
                                         CorrelationRule]] = []
        self._window_observations: List[Observation] = []
        self.alerts: List[SiemAlert] = []
        self.rejected_low_score = 0
        self.rejected_benign = 0

    # -- rule creation ------------------------------------------------------------

    def rule_count(self) -> int:
        """Number of active rules (value + pattern)."""
        return len(self._value_rules) + len(self._pattern_rules)

    def add_rules_from_eioc(self, eioc: MispEvent, threat_score: float) -> int:
        """One value rule per correlatable attribute of the eIoC.

        Events whose threat score falls below ``min_threat_score`` are
        ignored — this is the knob the X4 benchmark sweeps.
        """
        if threat_score < self.min_threat_score:
            self.rejected_low_score += 1
            return 0
        created = 0
        for attribute in eioc.all_attributes():
            if attribute.type not in CORRELATABLE_TYPES or not attribute.to_ids:
                continue
            observable_type = _ATTRIBUTE_OBSERVABLE_TYPE.get(attribute.type)
            if observable_type is None:
                continue
            if (self._warninglists is not None
                    and self._warninglists.is_benign(attribute.value)):
                # A blocking rule on a known-benign value (public resolver,
                # top-site domain...) is a guaranteed false-positive machine.
                self.rejected_benign += 1
                continue
            key = (observable_type, attribute.value.lower())
            existing = self._value_rules.get(key)
            if existing is None or existing.threat_score < threat_score:
                self._value_rules[key] = CorrelationRule(
                    rule_id=f"rule-{attribute.uuid}",
                    description=f"{attribute.type}={attribute.value} "
                                f"(from eIoC {eioc.uuid[:8]})",
                    threat_score=threat_score,
                    value=attribute.value.lower(),
                    observable_type=observable_type,
                )
                created += 1
        return created

    def add_pattern_rule(self, rule_id: str, pattern: str,
                         threat_score: float, description: str = "") -> None:
        """Register a single-observation STIX-pattern rule."""
        compiled = CompiledPattern(pattern)
        self._pattern_rules.append((compiled, CorrelationRule(
            rule_id=rule_id, description=description,
            threat_score=threat_score, pattern=pattern,
        )))

    # -- detection ------------------------------------------------------------------

    def match(self, observable: Mapping[str, str],
              timestamp: _dt.datetime) -> Optional[SiemAlert]:
        """Match one observable against every rule; returns the best alert."""
        obs_type = observable.get("type", "")
        value = str(observable.get("value", "")).lower()
        best: Optional[SiemAlert] = None
        rule = self._value_rules.get((obs_type, value))
        if rule is not None:
            best = SiemAlert(rule.rule_id, value, rule.threat_score, timestamp)
        if self._pattern_rules:
            observation = Observation.single(dict(observable), timestamp)
            for compiled, pattern_rule in self._pattern_rules:
                if compiled.matches([observation]):
                    candidate = SiemAlert(
                        pattern_rule.rule_id, value,
                        pattern_rule.threat_score, timestamp)
                    if best is None or candidate.threat_score > best.threat_score:
                        best = candidate
        if best is not None:
            self.alerts.append(best)
        return best

    # -- multi-event sequence rules ------------------------------------------

    def add_sequence_rule(self, rule_id: str, pattern: str,
                          threat_score: float,
                          window: _dt.timedelta = _dt.timedelta(minutes=10),
                          description: str = "") -> None:
        """A rule over an observation *sequence* (FOLLOWEDBY / REPEATS...).

        Sequence rules are evaluated by :meth:`observe`, which keeps a
        sliding window of recent observations — the stateful correlation
        real SIEM directives (e.g. "brute force then success") need.
        """
        compiled = CompiledPattern(pattern)
        self._sequence_rules.append((compiled, window, CorrelationRule(
            rule_id=rule_id, description=description,
            threat_score=threat_score, pattern=pattern)))

    def observe(self, observable: Mapping[str, str],
                timestamp: _dt.datetime) -> List[SiemAlert]:
        """Feed one observation into the sequence engine (and point rules).

        Returns every alert raised: point-rule matches plus any sequence
        rule satisfied by the observations inside its window.
        """
        alerts: List[SiemAlert] = []
        point = self.match(observable, timestamp)
        if point is not None:
            alerts.append(point)
        if not self._sequence_rules:
            return alerts
        self._window_observations.append(
            Observation.single(dict(observable), timestamp))
        # Trim to the widest window among the rules.
        widest = max(window for _c, window, _r in self._sequence_rules)
        cutoff = timestamp - widest
        self._window_observations = [
            obs for obs in self._window_observations
            if obs.timestamp >= cutoff]
        for compiled, window, rule in self._sequence_rules:
            in_window = [obs for obs in self._window_observations
                         if obs.timestamp >= timestamp - window]
            if compiled.matches(in_window):
                alert = SiemAlert(rule.rule_id,
                                  str(observable.get("value", "")),
                                  rule.threat_score, timestamp)
                self.alerts.append(alert)
                alerts.append(alert)
                # One firing per satisfaction: drop the consumed window.
                self._window_observations = [
                    obs for obs in self._window_observations
                    if obs not in in_window]
        return alerts

    def replay(self, telemetry: Sequence[Tuple[Mapping[str, str], bool]],
               timestamp: Optional[_dt.datetime] = None) -> DetectionReport:
        """Replay labelled telemetry: (observable, is_malicious) pairs."""
        timestamp = timestamp or _dt.datetime(2018, 6, 15, tzinfo=_dt.timezone.utc)
        report = DetectionReport()
        for observable, is_malicious in telemetry:
            alert = self.match(observable, timestamp)
            if alert is not None and is_malicious:
                report.true_positives += 1
            elif alert is not None:
                report.false_positives += 1
            elif is_malicious:
                report.false_negatives += 1
            else:
                report.true_negatives += 1
        return report
