"""TAXII 2.0-lite: collection-based STIX sharing over in-process transport.

The paper names STIX+TAXII as "the most used, and also the most promising"
sharing standards (§II-A).  This module implements the TAXII 2.0 resource
model that matters for exchange — discovery, API roots, collections, and the
objects endpoint with ``added_after`` filtering — without HTTP, so two
platforms in one process can exchange intelligence the standard way.
"""

from __future__ import annotations

import datetime as _dt
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..clock import Clock, SimulatedClock, ensure_utc
from ..errors import SharingError
from ..stix import Bundle, StixObject, parse_object


@dataclass
class TaxiiCollection:
    """One TAXII collection: metadata + the stored envelope of objects."""

    collection_id: str
    title: str
    description: str = ""
    can_read: bool = True
    can_write: bool = True
    #: (added_at, object dict) pairs, insertion ordered.
    _objects: List[Tuple[_dt.datetime, Dict]] = field(default_factory=list)

    def manifest(self) -> List[Dict]:
        """The TAXII manifest entries of this collection."""
        return [
            {
                "id": obj.get("id"),
                "date_added": added_at.isoformat(),
                "version": obj.get("modified"),
            }
            for added_at, obj in self._objects
        ]

    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)


class TaxiiServer:
    """A TAXII 2.0-lite server: discovery + one API root of collections."""

    def __init__(self, title: str = "CAOP TAXII", api_root: str = "intel",
                 clock: Optional[Clock] = None) -> None:
        self.title = title
        self.api_root = api_root
        self._collections: Dict[str, TaxiiCollection] = {}
        self._clock = clock or SimulatedClock()
        self.requests_served = 0
        #: Serializes object writes — sharing gateways may push from
        #: worker threads (each gateway holds its own transport lock, but
        #: several gateways can target one server).
        self._write_lock = threading.Lock()

    # -- server management -----------------------------------------------------

    def create_collection(self, collection_id: str, title: str,
                          description: str = "", can_read: bool = True,
                          can_write: bool = True) -> TaxiiCollection:
        """Create a new collection on this API root."""
        if collection_id in self._collections:
            raise SharingError(f"collection {collection_id!r} already exists")
        collection = TaxiiCollection(
            collection_id=collection_id, title=title, description=description,
            can_read=can_read, can_write=can_write)
        self._collections[collection_id] = collection
        return collection

    # -- protocol endpoints -------------------------------------------------------

    def discovery(self) -> Dict:
        """The TAXII discovery resource."""
        self.requests_served += 1
        return {
            "title": self.title,
            "api_roots": [f"/{self.api_root}/"],
        }

    def get_collections(self) -> List[Dict]:
        """The collection metadata resources."""
        self.requests_served += 1
        return [
            {
                "id": c.collection_id,
                "title": c.title,
                "description": c.description,
                "can_read": c.can_read,
                "can_write": c.can_write,
            }
            for c in self._collections.values()
        ]

    def _collection(self, collection_id: str) -> TaxiiCollection:
        collection = self._collections.get(collection_id)
        if collection is None:
            raise SharingError(f"no such collection {collection_id!r}")
        return collection

    def add_objects(self, collection_id: str,
                    objects: Sequence[Mapping]) -> Dict:
        """POST /collections/{id}/objects — returns a status resource."""
        collection = self._collection(collection_id)
        if not collection.can_write:
            self.requests_served += 1
            raise SharingError(f"collection {collection_id!r} is read-only")
        now = self._clock.now()
        successes = 0
        failures = 0
        with self._write_lock:
            self.requests_served += 1
            for obj in objects:
                try:
                    parse_object(obj)  # validate before accepting
                    collection._objects.append((now, dict(obj)))
                    successes += 1
                except Exception:
                    failures += 1
        return {
            "status": "complete",
            "success_count": successes,
            "failure_count": failures,
        }

    def get_objects(self, collection_id: str,
                    added_after: Optional[_dt.datetime] = None,
                    object_type: Optional[str] = None) -> List[Dict]:
        """GET /collections/{id}/objects with TAXII filters."""
        self.requests_served += 1
        collection = self._collection(collection_id)
        if not collection.can_read:
            raise SharingError(f"collection {collection_id!r} is not readable")
        if added_after is not None:
            added_after = ensure_utc(added_after)
        out: List[Dict] = []
        for added_at, obj in collection._objects:
            if added_after is not None and added_at <= added_after:
                continue
            if object_type is not None and obj.get("type") != object_type:
                continue
            out.append(dict(obj))
        return out

    def get_manifest(self, collection_id: str) -> List[Dict]:
        """GET /collections/{id}/manifest."""
        self.requests_served += 1
        return self._collection(collection_id).manifest()


class TaxiiClient:
    """Client-side helper speaking to a :class:`TaxiiServer` instance."""

    def __init__(self, server: TaxiiServer, clock: Optional[Clock] = None) -> None:
        self._server = server
        self._clock = clock or SimulatedClock()
        #: high-water mark per collection for incremental polls.
        self._last_poll: Dict[str, _dt.datetime] = {}

    def discover_collections(self) -> List[str]:
        """Readable collection ids via discovery."""
        self._server.discovery()
        return [c["id"] for c in self._server.get_collections() if c["can_read"]]

    def push_bundle(self, collection_id: str, bundle: Bundle) -> Dict:
        """POST a bundle's objects to a collection."""
        return self._server.add_objects(
            collection_id, [obj.to_dict() for obj in bundle])

    def poll(self, collection_id: str,
             object_type: Optional[str] = None) -> List[StixObject]:
        """Incremental poll: only objects added since the previous poll."""
        added_after = self._last_poll.get(collection_id)
        raw = self._server.get_objects(
            collection_id, added_after=added_after, object_type=object_type)
        self._last_poll[collection_id] = self._clock.now()
        return [parse_object(obj) for obj in raw]
