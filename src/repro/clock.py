"""Clock abstraction used everywhere a timestamp or an age matters.

Threat-score criteria such as *timeliness* (`modified_created`, `valid_from`,
`valid_until` features) score an IoC by how old its timestamps are *relative
to now*.  Tests and benchmarks need those results to be reproducible, so all
components take a :class:`Clock` and the default wiring injects a
:class:`SimulatedClock` pinned to a fixed instant.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

UTC = _dt.timezone.utc

#: The reference instant used by the paper's use case.  The CVE-2017-9805
#: IoC was "created and last modified on 2017-09-13" and "valid for one
#: year"; Table V scores both ``modified_created`` and ``valid_from`` in the
#: *last_year* band, so the analysis instant must fall within a year of
#: 2017-09-13 (the paper was written during 2018).  Pinning the default
#: simulated clock here makes the Table V reproduction exact.
PAPER_NOW = _dt.datetime(2018, 6, 15, 12, 0, 0, tzinfo=UTC)


def ensure_utc(value: _dt.datetime) -> _dt.datetime:
    """Return ``value`` as a timezone-aware UTC datetime.

    Naive datetimes are interpreted as UTC; aware ones are converted.
    """
    if value.tzinfo is None:
        return value.replace(tzinfo=UTC)
    return value.astimezone(UTC)


def parse_timestamp(text: str) -> _dt.datetime:
    """Parse an ISO-8601 / STIX timestamp string into an aware UTC datetime."""
    cleaned = text.strip()
    if cleaned.endswith("Z"):
        cleaned = cleaned[:-1] + "+00:00"
    return ensure_utc(_dt.datetime.fromisoformat(cleaned))


def format_timestamp(value: _dt.datetime) -> str:
    """Render a datetime in the STIX 2.0 wire format (``...Z``, millisecond)."""
    value = ensure_utc(value)
    return value.strftime("%Y-%m-%dT%H:%M:%S.") + f"{value.microsecond // 1000:03d}Z"


class Clock:
    """Interface: anything with a ``now()`` returning an aware UTC datetime."""

    def now(self) -> _dt.datetime:
        """Return the current instant (aware UTC datetime)."""
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time; used by live deployments, never by tests."""

    def now(self) -> _dt.datetime:
        """Return the current instant (aware UTC datetime)."""
        return _dt.datetime.now(tz=UTC)


class SimulatedClock(Clock):
    """A controllable clock.

    ``advance()`` moves time forward explicitly; ``tick`` (optional) moves it
    forward automatically by a fixed step on every ``now()`` call, which is
    convenient for sensors that stamp a stream of events.
    """

    def __init__(self, start: Optional[_dt.datetime] = None,
                 tick: Optional[_dt.timedelta] = None) -> None:
        self._now = ensure_utc(start) if start is not None else PAPER_NOW
        self._tick = tick

    def now(self) -> _dt.datetime:
        """Return the current instant (aware UTC datetime)."""
        current = self._now
        if self._tick is not None:
            self._now = self._now + self._tick
        return current

    def advance(self, delta: _dt.timedelta) -> _dt.datetime:
        """Move the clock forward and return the new instant."""
        if delta < _dt.timedelta(0):
            raise ValueError("cannot move a SimulatedClock backwards")
        self._now = self._now + delta
        return self._now

    def set(self, instant: _dt.datetime) -> None:
        """Pin the clock to an absolute instant."""
        self._now = ensure_utc(instant)


class FixedClock(Clock):
    """An immutable clock frozen at one instant.

    Parallel stages hand each worker a :class:`FixedClock` snapshot taken on
    the coordinating thread, so time-dependent computation (feature ages,
    attribute timestamps) is independent of how worker threads interleave —
    even when the platform clock is a ticking :class:`SimulatedClock`.
    """

    def __init__(self, instant: _dt.datetime) -> None:
        self._instant = ensure_utc(instant)

    def now(self) -> _dt.datetime:
        """Return the frozen instant (aware UTC datetime)."""
        return self._instant
